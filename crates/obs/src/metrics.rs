//! The global metrics sink: typed counters, gauges and histograms plus the
//! span-event buffer, all behind one mutex that is only ever touched when
//! collection is enabled.

use crate::json::Json;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Span events kept before the buffer saturates; a counter of dropped
/// events is maintained past this point so truncation is never silent.
const MAX_SPAN_EVENTS: usize = 1 << 20;

/// The single global "is collection on?" flag. Every recording entry point
/// checks this with one relaxed atomic load and returns immediately when
/// off, which is what keeps the disabled layer out of hot-loop profiles.
static ENABLED: AtomicBool = AtomicBool::new(false);

static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();

/// Monotone sequence for compact per-thread ids (Chrome traces want small
/// integer `tid`s; `std::thread::ThreadId` has no stable integer form).
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DOMAIN: Cell<u32> = const { Cell::new(0) };
}

/// The compact id of the calling thread (stable for the thread's life).
#[must_use]
pub fn thread_id() -> u32 {
    TID.with(|t| *t)
}

/// The metric domain the calling thread currently records into.
///
/// Domains attribute metrics to logical units of work (one bench experiment,
/// one grid cell) rather than to threads, so a parallel harness can still
/// produce per-experiment [`MetricsSnapshot`]s. Domain `0` is the default
/// for code that never calls [`enter_domain`].
#[must_use]
pub fn current_domain() -> u32 {
    DOMAIN.with(Cell::get)
}

/// Restores the previous metric domain of its thread when dropped.
#[derive(Debug)]
pub struct DomainGuard {
    prev: u32,
}

impl Drop for DomainGuard {
    fn drop(&mut self) {
        DOMAIN.with(|d| d.set(self.prev));
    }
}

/// Routes this thread's subsequent counters/gauges/histograms/spans into
/// `domain` until the returned guard drops (guards nest; the previous
/// domain is restored).
///
/// Worker threads do **not** inherit a domain — a task running on a pool
/// must re-enter its domain on the worker (see `dvs-runtime`'s `Pool::map`
/// callers in `dvs-bench`).
#[must_use]
pub fn enter_domain(domain: u32) -> DomainGuard {
    DomainGuard {
        prev: DOMAIN.with(|d| d.replace(domain)),
    }
}

/// Registry of human-readable domain names. Registration is cheap and works
/// whether or not collection is enabled, so attribution survives
/// enable/disable cycles; [`reset`] does not clear it (names are identity,
/// not data).
static DOMAIN_NAMES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();

fn domain_names() -> &'static Mutex<Vec<String>> {
    DOMAIN_NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Allocates a fresh metric domain id and associates `name` with it.
///
/// Ids start at 1 (domain 0 is the anonymous default) and are unique for
/// the life of the process, so two units of work — say a bench experiment
/// and a serve request batch — can never alias each other's metrics even
/// when they run concurrently. Use the returned id with [`enter_domain`]
/// and [`MetricsSnapshot::capture_domain`].
#[must_use]
pub fn register_domain(name: &str) -> u32 {
    let mut names = domain_names().lock().expect("domain registry poisoned");
    names.push(name.to_string());
    u32::try_from(names.len()).expect("fewer than 2^32 domains")
}

/// The name a domain was registered under, if any. Domain 0 and ids that
/// were claimed via [`enter_domain`] without registration have no name.
#[must_use]
pub fn domain_name(domain: u32) -> Option<String> {
    if domain == 0 {
        return None;
    }
    let names = domain_names().lock().expect("domain registry poisoned");
    names.get(domain as usize - 1).cloned()
}

/// A finished span occurrence, timestamped against the sink epoch.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Static span name, e.g. `"pass.solve"`.
    pub name: &'static str,
    /// Compact id of the thread the span ran on.
    pub tid: u32,
    /// Metric domain active when the span finished (see [`enter_domain`]).
    pub domain: u32,
    /// Start time in µs since the sink epoch.
    pub ts_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Power-of-two buckets: bucket `i` counts values in `[2^(i-1), 2^i)`,
    /// bucket 0 counts values below 1.
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v < 1.0 {
            0
        } else {
            (v.log2() as usize + 1).min(63)
        };
        self.buckets[bucket] += 1;
    }

    /// Folds another histogram into this one (used when aggregating the
    /// per-domain shards of one metric name into a cross-domain snapshot).
    fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// Key of a per-domain metric shard: (metric name, domain id). Ordering by
/// name first keeps cross-domain aggregation a single ordered walk.
type Key = (&'static str, u32);

#[derive(Debug, Default)]
struct Sink {
    counters: BTreeMap<Key, u64>,
    /// Gauge shards carry the global write sequence number so "last write
    /// wins" still holds when shards from several domains are merged.
    gauges: BTreeMap<Key, (u64, f64)>,
    gauge_seq: u64,
    histograms: BTreeMap<Key, Histogram>,
    spans: Vec<SpanEvent>,
    dropped_spans: u64,
}

fn sink() -> &'static Mutex<Sink> {
    SINK.get_or_init(|| Mutex::new(Sink::default()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether collection is currently enabled. One relaxed atomic load.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on (idempotent). Also pins the trace epoch, so `ts`
/// values in a Chrome trace are relative to (roughly) the first `enable`.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns collection off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears every counter, gauge, histogram and span event.
pub fn reset() {
    let mut s = sink().lock().expect("obs sink poisoned");
    *s = Sink::default();
}

/// Adds `delta` to the named monotonic counter in the calling thread's
/// current domain. No-op while disabled.
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let key = (name, current_domain());
    let mut s = sink().lock().expect("obs sink poisoned");
    *s.counters.entry(key).or_insert(0) += delta;
}

/// Sets the named gauge to `value` (last write wins, tracked with a global
/// write sequence so cross-domain aggregation stays well defined). No-op
/// while disabled.
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let key = (name, current_domain());
    let mut s = sink().lock().expect("obs sink poisoned");
    s.gauge_seq += 1;
    let seq = s.gauge_seq;
    s.gauges.insert(key, (seq, value));
}

/// Records one observation into the named histogram in the calling thread's
/// current domain. No-op while disabled.
pub fn histogram(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let key = (name, current_domain());
    let mut s = sink().lock().expect("obs sink poisoned");
    s.histograms.entry(key).or_default().record(value);
}

/// Records a finished span. Called by the [`crate::SpanGuard`] drop; public
/// so exporters can be tested without real time passing.
pub fn record_span(name: &'static str, start: Instant, end: Instant) {
    if !enabled() {
        return;
    }
    let e = epoch();
    let ts_us = start.saturating_duration_since(e).as_secs_f64() * 1e6;
    let dur_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
    let mut s = sink().lock().expect("obs sink poisoned");
    if s.spans.len() >= MAX_SPAN_EVENTS {
        s.dropped_spans += 1;
        return;
    }
    s.spans.push(SpanEvent {
        name,
        tid: thread_id(),
        domain: current_domain(),
        ts_us,
        dur_us,
    });
}

/// Aggregated statistics of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median estimated from the power-of-two buckets (upper bound of the
    /// bucket holding the middle observation).
    pub p50_est: f64,
}

/// Aggregated statistics of one span name at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Total time inside the span, µs (self-time is not subtracted).
    pub total_us: f64,
    /// Longest single occurrence, µs.
    pub max_us: f64,
}

/// A point-in-time copy of every metric, detached from the live sink.
///
/// This is the unit the rest of the workspace passes around (bench reports
/// attach one per experiment) and the input to the JSON/table exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges (last written value), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Per-span-name aggregates, sorted by name.
    pub spans: Vec<SpanSummary>,
    /// Span events discarded after the buffer filled (0 in healthy runs).
    pub dropped_spans: u64,
}

impl MetricsSnapshot {
    /// Captures the current state of the global sink, aggregated across
    /// every metric domain (counters/histograms sum; a gauge takes its
    /// globally most recent write).
    #[must_use]
    pub fn capture() -> Self {
        Self::capture_where(&|_| true)
    }

    /// Captures only the metrics recorded in one domain (see
    /// [`enter_domain`]) — the per-experiment snapshot of a parallel bench
    /// run. `dropped_spans` is a property of the shared buffer and is
    /// reported as-is.
    #[must_use]
    pub fn capture_domain(domain: u32) -> Self {
        Self::capture_where(&|d| d == domain)
    }

    fn capture_where(keep: &dyn Fn(u32) -> bool) -> Self {
        let s = sink().lock().expect("obs sink poisoned");
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (&(name, dom), &v) in &s.counters {
            if keep(dom) {
                *counters.entry(name).or_insert(0) += v;
            }
        }
        let mut gauges: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
        for (&(name, dom), &(seq, v)) in &s.gauges {
            if keep(dom) {
                let e = gauges.entry(name).or_insert((seq, v));
                if seq >= e.0 {
                    *e = (seq, v);
                }
            }
        }
        let mut merged: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for (&(name, dom), h) in &s.histograms {
            if keep(dom) {
                merged.entry(name).or_default().merge(h);
            }
        }
        let histograms = merged
            .iter()
            .map(|(name, h)| {
                let mut seen = 0u64;
                let mut p50 = h.max;
                for (i, &c) in h.buckets.iter().enumerate() {
                    seen += c;
                    if seen * 2 >= h.count {
                        p50 = 2f64.powi(i as i32).min(h.max);
                        break;
                    }
                }
                HistogramSummary {
                    name: (*name).to_string(),
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    p50_est: p50,
                }
            })
            .collect();
        let mut by_name: BTreeMap<&'static str, SpanSummary> = BTreeMap::new();
        for ev in s.spans.iter().filter(|ev| keep(ev.domain)) {
            let agg = by_name.entry(ev.name).or_insert_with(|| SpanSummary {
                name: ev.name.to_string(),
                count: 0,
                total_us: 0.0,
                max_us: 0.0,
            });
            agg.count += 1;
            agg.total_us += ev.dur_us;
            agg.max_us = agg.max_us.max(ev.dur_us);
        }
        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(k, (_, v))| (k.to_string(), v))
                .collect(),
            histograms,
            spans: by_name.into_values().collect(),
            dropped_spans: s.dropped_spans,
        }
    }

    /// The value of a counter, or 0 when it was never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value of a gauge, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Serializes the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        let histograms = Json::Arr(
            self.histograms
                .iter()
                .map(|h| {
                    Json::obj([
                        ("name", Json::from(h.name.as_str())),
                        ("count", Json::from(h.count)),
                        ("sum", Json::from(h.sum)),
                        ("min", Json::from(h.min)),
                        ("max", Json::from(h.max)),
                        ("p50_est", Json::from(h.p50_est)),
                    ])
                })
                .collect(),
        );
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj([
                        ("name", Json::from(s.name.as_str())),
                        ("count", Json::from(s.count)),
                        ("total_us", Json::from(s.total_us)),
                        ("max_us", Json::from(s.max_us)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
            ("spans".to_string(), spans),
            ("dropped_spans".to_string(), Json::from(self.dropped_spans)),
        ])
    }

    /// Parses a snapshot previously produced by [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let mut snap = MetricsSnapshot::default();
        if let Some(members) = v.get("counters").and_then(Json::as_obj) {
            for (k, val) in members {
                let n = val
                    .as_u64()
                    .ok_or_else(|| format!("counter `{k}` not a u64"))?;
                snap.counters.push((k.clone(), n));
            }
        }
        if let Some(members) = v.get("gauges").and_then(Json::as_obj) {
            for (k, val) in members {
                let n = val
                    .as_f64()
                    .ok_or_else(|| format!("gauge `{k}` not a number"))?;
                snap.gauges.push((k.clone(), n));
            }
        }
        if let Some(items) = v.get("histograms").and_then(Json::as_arr) {
            for h in items {
                let name = h
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("histogram without a name")?
                    .to_string();
                let field = |key: &str| {
                    h.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("histogram `{name}`: `{key}` not a number"))
                };
                snap.histograms.push(HistogramSummary {
                    count: h
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("histogram `{name}`: `count` not a u64"))?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    p50_est: field("p50_est")?,
                    name,
                });
            }
        }
        if let Some(items) = v.get("spans").and_then(Json::as_arr) {
            for s in items {
                let name = s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("span without a name")?
                    .to_string();
                let field = |key: &str| {
                    s.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("span `{name}`: `{key}` not a number"))
                };
                snap.spans.push(SpanSummary {
                    count: s
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("span `{name}`: `count` not a u64"))?,
                    total_us: field("total_us")?,
                    max_us: field("max_us")?,
                    name,
                });
            }
        }
        if let Some(d) = v.get("dropped_spans").and_then(Json::as_u64) {
            snap.dropped_spans = d;
        }
        Ok(snap)
    }

    /// A human-readable, aligned summary of every metric — the `--metrics`
    /// output of `dvsc`.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== metrics ==");
        if !self.counters.is_empty() {
            let w = self
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<w$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "-- gauges --");
            let w = self.gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<w$}  {v:.3}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "-- histograms --");
            for h in &self.histograms {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    #[allow(clippy::cast_precision_loss)]
                    let c = h.count as f64;
                    h.sum / c
                };
                // Histograms named `*_us` hold microsecond quantities and
                // get adaptive ns/µs/ms units so sub-microsecond means no
                // longer flatten to `0.000`; unitless histograms keep a
                // plain numeric rendering.
                if h.name.ends_with("_us") {
                    let _ = writeln!(
                        out,
                        "  {}  n={} sum={} mean={} min={} p50≈{} max={}",
                        h.name,
                        h.count,
                        format_us(h.sum),
                        format_us(mean),
                        format_us(h.min),
                        format_us(h.p50_est),
                        format_us(h.max)
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "  {}  n={} sum={:.3} mean={:.3} min={:.3} p50≈{:.3} max={:.3}",
                        h.name, h.count, h.sum, mean, h.min, h.p50_est, h.max
                    );
                }
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "-- spans --");
            let w = self.spans.iter().map(|s| s.name.len()).max().unwrap_or(0);
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<w$}  n={:<6} total={:>12} max={:>10}",
                    s.name,
                    s.count,
                    format_us(s.total_us),
                    format_us(s.max_us)
                );
            }
        }
        if self.dropped_spans > 0 {
            let _ = writeln!(
                out,
                "!! {} span events dropped (buffer full)",
                self.dropped_spans
            );
        }
        out
    }
}

/// Formats a microsecond quantity with an adaptive unit — ns below 1 µs,
/// µs below 1 ms, ms below 1 s, seconds above — so sub-microsecond values
/// stay legible instead of rounding to `0.000`.
#[must_use]
pub fn format_us(us: f64) -> String {
    let a = us.abs();
    if a > 0.0 && a < 1.0 {
        format!("{:.1} ns", us * 1e3)
    } else if a < 1e3 {
        format!("{us:.2} µs")
    } else if a < 1e6 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{:.3} s", us / 1e6)
    }
}

/// Renders every recorded span as a Chrome trace-event JSON array —
/// loadable in `chrome://tracing` and <https://ui.perfetto.dev>.
///
/// Each event is a "complete" (`"ph": "X"`) event carrying `name`, `cat`,
/// `ts`/`dur` in microseconds, and `pid`/`tid`.
#[must_use]
pub fn chrome_trace() -> Json {
    let s = sink().lock().expect("obs sink poisoned");
    Json::Arr(
        s.spans
            .iter()
            .map(|ev| {
                Json::obj([
                    ("name", Json::from(ev.name)),
                    ("cat", Json::from("dvs")),
                    ("ph", Json::from("X")),
                    ("ts", Json::from(ev.ts_us)),
                    ("dur", Json::from(ev.dur_us)),
                    ("pid", Json::from(1_u64)),
                    ("tid", Json::from(u64::from(ev.tid))),
                ])
            })
            .collect(),
    )
}

/// [`chrome_trace`] serialized as a compact string, ready to write to the
/// `--trace-out` file.
#[must_use]
pub fn chrome_trace_string() -> String {
    chrome_trace().dump()
}
