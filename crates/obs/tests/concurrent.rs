//! Thread-safety and export-shape tests for the global collector.
//!
//! The sink is process-wide, so every test takes `LOCK` and fully
//! resets the collector before making assertions.

use dvs_obs::json::Json;
use dvs_obs::MetricsSnapshot;
use std::sync::Mutex;
use std::thread;

static LOCK: Mutex<()> = Mutex::new(());

#[test]
fn concurrent_counters_lose_no_increments() {
    let _l = LOCK.lock().unwrap();
    dvs_obs::enable();
    dvs_obs::reset();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 1000;
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    dvs_obs::counter("cc.hits", 1);
                }
            });
        }
    });
    let snap = MetricsSnapshot::capture();
    dvs_obs::disable();
    assert_eq!(snap.counter("cc.hits"), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histograms_account_every_sample() {
    let _l = LOCK.lock().unwrap();
    dvs_obs::enable();
    dvs_obs::reset();
    const THREADS: usize = 6;
    const PER_THREAD: usize = 500;
    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    dvs_obs::histogram("ch.lat", (t * PER_THREAD + i) as f64);
                }
            });
        }
    });
    let snap = MetricsSnapshot::capture();
    dvs_obs::disable();
    let h = snap
        .histograms
        .iter()
        .find(|h| h.name == "ch.lat")
        .expect("histogram recorded");
    let n = (THREADS * PER_THREAD) as u64;
    assert_eq!(h.count, n);
    assert_eq!(h.min, 0.0);
    assert_eq!(h.max, (n - 1) as f64);
    // Sum of 0..n-1.
    assert!((h.sum - (n * (n - 1) / 2) as f64).abs() < 1e-6);
}

/// Golden shape test: the Chrome trace export must be a JSON array of
/// complete ("ph":"X") events carrying exactly the fields the
/// chrome://tracing / Perfetto loaders require.
#[test]
fn chrome_trace_export_has_the_documented_shape() {
    let _l = LOCK.lock().unwrap();
    dvs_obs::enable();
    dvs_obs::reset();
    {
        let _a = dvs_obs::span!("shape.outer");
        let _b = dvs_obs::span!("shape.inner");
    }
    // Spans from a second thread must carry a distinct tid.
    thread::spawn(|| drop(dvs_obs::span!("shape.worker")))
        .join()
        .unwrap();
    let text = dvs_obs::chrome_trace_string();
    dvs_obs::disable();

    let root = Json::parse(&text).expect("trace is valid JSON");
    let events = root.as_arr().expect("trace is a JSON array");
    assert_eq!(events.len(), 3, "one event per span: {text}");
    for ev in events {
        let obj = ev.as_obj().expect("each event is an object");
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        for required in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(keys.contains(&required), "missing `{required}` in {text}");
        }
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(ev.get("cat").and_then(Json::as_str), Some("dvs"));
        assert_eq!(ev.get("pid").and_then(Json::as_u64), Some(1));
        assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        assert!(ev.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
    }
    let names: Vec<&str> = events
        .iter()
        .map(|e| e.get("name").and_then(Json::as_str).unwrap())
        .collect();
    for n in ["shape.outer", "shape.inner", "shape.worker"] {
        assert!(names.contains(&n), "missing span `{n}`");
    }
    let tid_of = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|e| e.get("tid").and_then(Json::as_u64))
            .unwrap()
    };
    assert_eq!(tid_of("shape.outer"), tid_of("shape.inner"));
    assert_ne!(tid_of("shape.outer"), tid_of("shape.worker"));
}

#[test]
fn snapshot_survives_json_round_trip() {
    let _l = LOCK.lock().unwrap();
    dvs_obs::enable();
    dvs_obs::reset();
    dvs_obs::counter("rt.count", 42);
    dvs_obs::gauge("rt.gauge", 3.25);
    dvs_obs::histogram("rt.hist", 7.0);
    let snap = MetricsSnapshot::capture();
    dvs_obs::disable();
    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("round trip");
    assert_eq!(back.counter("rt.count"), 42);
    assert_eq!(back.gauge("rt.gauge"), Some(3.25));
    assert_eq!(back.histograms.len(), 1);
    let table = back.summary_table();
    assert!(table.contains("rt.count"));
    assert!(table.contains("42"));
}
