//! The compiled program: op encodings, mode tables and summary statistics.

// Access-kind encodings; 0 means "no access" (the `RawOp::default()`).
/// Access hit L1 (energy only; timing folds into the base latency).
pub(crate) const ACC_L1: u8 = 1;
/// Access hit L2 (`cyc` carries the extra cycles).
pub(crate) const ACC_L2: u8 = 2;
/// Access went to main memory (`cyc` carries the cycle-domain prefix of the
/// asynchronous DRAM visit).
pub(crate) const ACC_MEM: u8 = 3;

pub(crate) const F_MEM: u8 = 1 << 0;
pub(crate) const F_LOAD: u8 = 1 << 1;
pub(crate) const F_WRITES: u8 = 1 << 2;
pub(crate) const F_MISPREDICT: u8 = 1 << 3;
pub(crate) const F_BRANCH: u8 = 1 << 4;

/// Integer-exact op used while compiling: hashable so identical occurrence
/// sequences intern to one variant. Never stored in the finished bytecode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub(crate) struct RawOp {
    /// `ACC_*` outcome of the instruction-cache line fetch (`ACC_NONE` when
    /// this instruction reuses the previously fetched line).
    pub icache: u8,
    /// L2: extra cycles past L1; Memory: cycle-domain prefix before DRAM.
    pub icache_cyc: u32,
    /// `F_*` bits.
    pub flags: u8,
    /// Functional-unit pool (0 = ALU/AGU/branch, 1 = mul, 2 = div,
    /// 3–5 = FP add/mul/div, 6 = nop).
    pub pool_ix: u8,
    /// Destination register (valid iff `F_WRITES`).
    pub dest: u8,
    /// Non-zero source registers, `nsrc` of them.
    pub srcs: [u8; 3],
    pub nsrc: u8,
    /// Base latency in cycles.
    pub latency: u32,
    /// `ACC_*` outcome of the data access (valid iff `F_MEM`).
    pub dcache: u8,
    /// Cycle count reported by the hierarchy for the data access.
    pub dcache_cyc: u32,
}

/// Interpreter-ready op: the `RawOp` with cycle counts pre-converted to f64
/// and the unpipelined-divider occupancy resolved.
#[derive(Clone, Copy)]
pub(crate) struct InstOp {
    pub icache: u8,
    pub flags: u8,
    pub pool_ix: u8,
    pub dest: u8,
    pub nsrc: u8,
    pub srcs: [u8; 3],
    pub dcache: u8,
    pub icache_cyc: f64,
    pub latency: f64,
    /// Cycles the functional unit stays busy (latency for the unpipelined
    /// dividers, one otherwise).
    pub occupancy: f64,
    pub dcache_cyc: f64,
}

/// A deduplicated per-occurrence instruction sequence plus its pre-summed
/// switched capacitance (nF). At replay time the occurrence's processor
/// energy is `nf_total · V² · 1e-3` µJ for whatever mode is then current.
pub(crate) struct Variant {
    pub ops: Vec<InstOp>,
    pub nf_total: f64,
}

/// One trace step (or a run of identical consecutive steps): arrive via
/// `edge` (`u32::MAX` on the virtual start edge), execute `variant`,
/// `reps` times. Runs longer than one arise from self-loop back edges,
/// where every repeat arrives via the same edge with the same cache-warm
/// op sequence.
#[derive(Clone, Copy)]
pub(crate) struct BlockOp {
    pub edge: u32,
    pub variant: u32,
    pub reps: u32,
}

pub(crate) const ENTRY_EDGE: u32 = u32::MAX;

/// A trace + machine compiled into a linear, schedule-independent program.
/// Build with [`crate::compile`]; evaluate schedules with
/// [`ReplayBytecode::replay`] / [`ReplayBytecode::replay_batch`].
pub struct ReplayBytecode {
    pub(crate) num_edges: usize,
    pub(crate) num_modes: usize,
    /// Per-mode clock period, µs.
    pub(crate) period_us: Vec<f64>,
    /// Per-mode supply voltage squared, V².
    pub(crate) vv: Vec<f64>,
    /// Row-major `modes × modes` regulator transition time, µs.
    pub(crate) switch_time_us: Vec<f64>,
    /// Row-major `modes × modes` regulator transition energy, µJ.
    pub(crate) switch_energy_uj: Vec<f64>,
    /// Off-chip energy of the whole trace — schedule-independent.
    pub(crate) dram_energy_uj: f64,
    pub(crate) variants: Vec<Variant>,
    pub(crate) ops: Vec<BlockOp>,
    /// Machine scalars the timing recurrence needs.
    pub(crate) mem_latency_us: f64,
    pub(crate) fetch_width: usize,
    pub(crate) ruu_size: usize,
    pub(crate) lsq_size: usize,
    pub(crate) commit_width: usize,
    pub(crate) mispredict_penalty: f64,
    /// Flattened functional-unit pools: pool `p` occupies
    /// `fu_offsets[p] .. fu_offsets[p + 1]` slots of the lane's free table.
    pub(crate) fu_offsets: [usize; 8],
    /// Occurrence/instruction counts for [`ReplayStats`].
    pub(crate) trace_blocks: usize,
    pub(crate) trace_insts: usize,
}

/// Size and compression statistics of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Dynamic block occurrences in the source trace.
    pub trace_blocks: usize,
    /// Dynamic instructions in the source trace.
    pub trace_insts: usize,
    /// Run-length-encoded block ops in the stream.
    pub block_ops: usize,
    /// Distinct interned occurrence variants.
    pub variants: usize,
    /// Instruction ops actually stored across all variants.
    pub variant_insts: usize,
    /// CFG edges the evaluated schedules must cover.
    pub edges: usize,
    /// Ladder modes the program was compiled against.
    pub modes: usize,
}

impl ReplayBytecode {
    /// Size and compression statistics.
    #[must_use]
    pub fn stats(&self) -> ReplayStats {
        ReplayStats {
            trace_blocks: self.trace_blocks,
            trace_insts: self.trace_insts,
            block_ops: self.ops.len(),
            variants: self.variants.len(),
            variant_insts: self.variants.iter().map(|v| v.ops.len()).sum(),
            edges: self.num_edges,
            modes: self.num_modes,
        }
    }

    /// Test support: corrupt the stored costs of one interned variant by a
    /// classic off-by-one — every op gains one cycle of latency and the
    /// variant's switched capacitance gains 0.01 nF per op (0.01 nF flat
    /// for an empty block). Each variant executes at least once by
    /// construction, so the corruption is always observable: processor
    /// energy strictly increases for every schedule, and time whenever the
    /// variant touches the critical path. The variant is picked
    /// deterministically from `seed`.
    #[doc(hidden)]
    pub fn inject_cost_fault(&mut self, seed: u64) {
        assert!(!self.variants.is_empty(), "compiled traces are non-empty");
        let target = usize::try_from(seed % self.variants.len() as u64).expect("fits usize");
        let v = &mut self.variants[target];
        for op in &mut v.ops {
            op.latency += 1.0;
        }
        v.nf_total += 0.01 * v.ops.len().max(1) as f64;
    }
}
