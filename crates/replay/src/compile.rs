//! Trace → bytecode compiler: runs the machine's mode-independent state
//! (memory hierarchy, TLBs, branch predictor) exactly once and records the
//! outcomes as interned integer ops.

use std::collections::HashMap;

use dvs_ir::{Cfg, Opcode};
use dvs_sim::{BranchPredictor, DataLevel, Machine, MemoryHierarchy, Trace};
use dvs_vf::{TransitionModel, VoltageLadder};

use crate::bytecode::{
    BlockOp, InstOp, RawOp, ReplayBytecode, Variant, ACC_L1, ACC_L2, ACC_MEM, ENTRY_EDGE, F_BRANCH,
    F_LOAD, F_MEM, F_MISPREDICT, F_WRITES,
};

/// Pipeline front-end depth in cycles; must match `dvs_sim::dvs_exec`.
pub(crate) const FRONTEND_DEPTH: f64 = 3.0;
const INST_BYTES: u64 = 4;
const BLOCK_STRIDE: u64 = 1024;

/// Compiles `trace` as executed by `machine` into a schedule-independent
/// program for `ladder`'s modes under `transition`'s regulator. Evaluating
/// the result against an [`dvs_sim::EdgeSchedule`] reproduces
/// [`Machine::run_scheduled`] — bit-identically for time and transition
/// accounting, to ~1e-15 relative for processor energy.
///
/// # Panics
///
/// Panics if the trace is inconsistent with `cfg` (same contract as the
/// simulator).
#[must_use]
pub fn compile(
    machine: &Machine,
    cfg: &Cfg,
    trace: &Trace,
    ladder: &VoltageLadder,
    transition: &TransitionModel,
) -> ReplayBytecode {
    let _span = dvs_obs::span!("replay.compile");
    let cfgm = machine.config();
    let em = machine.energy_model();

    let mut hier = MemoryHierarchy::new(cfgm);
    let mut pred = BranchPredictor::new(cfgm.predictor);

    // fu_nf by pool index; pools 0 (ALU/AGU/branch) and 6 (nop) are the two
    // where several opcodes share a pool, and within each the simulator
    // charges one capacitance, so the pool determines the FU energy.
    let fu_pool_nf = [
        em.int_alu_nf,
        em.int_mul_nf,
        em.int_div_nf,
        em.fp_add_nf,
        em.fp_mul_nf,
        em.fp_div_nf,
        0.0,
    ];

    let mut interner: HashMap<Vec<RawOp>, u32> = HashMap::new();
    let mut variants: Vec<Variant> = Vec::new();
    let mut ops: Vec<BlockOp> = Vec::new();
    let mut dram_uj = 0.0f64;
    let mut trace_insts = 0usize;

    let mut prev_block: Option<dvs_ir::BlockId> = None;
    let mut raw: Vec<RawOp> = Vec::new();

    for dyn_block in trace.blocks() {
        let edge = match prev_block {
            Some(pb) => {
                let e = cfg
                    .edge_between(pb, dyn_block.block)
                    .expect("trace follows CFG edges");
                u32::try_from(e.index()).expect("edge index fits u32")
            }
            None => ENTRY_EDGE,
        };
        prev_block = Some(dyn_block.block);

        let bb = cfg.block(dyn_block.block);
        let base_pc = dyn_block.block.index() as u64 * BLOCK_STRIDE;
        let line_bytes = cfgm.l1i.block_bytes;
        let mut next_line_pc = base_pc;
        let mut addr_ix = 0usize;

        raw.clear();
        for (ii, inst) in bb.insts.iter().enumerate() {
            let mut op = RawOp::default();
            let pc = base_pc + (ii as u64 * INST_BYTES) % BLOCK_STRIDE;
            if pc >= next_line_pc {
                let (lvl, cyc) = hier.inst_access(pc);
                match lvl {
                    DataLevel::L1 => op.icache = ACC_L1,
                    DataLevel::L2 => {
                        op.icache = ACC_L2;
                        op.icache_cyc = cyc - cfgm.l1_latency;
                    }
                    DataLevel::Memory => {
                        op.icache = ACC_MEM;
                        op.icache_cyc = cyc;
                        dram_uj += em.dram_uj_per_access;
                    }
                }
                next_line_pc = (pc / line_bytes + 1) * line_bytes;
            }

            op.pool_ix = match inst.opcode {
                Opcode::IntAlu | Opcode::Branch | Opcode::Load | Opcode::Store => 0,
                Opcode::IntMul => 1,
                Opcode::IntDiv => 2,
                Opcode::FpAdd => 3,
                Opcode::FpMul => 4,
                Opcode::FpDiv => 5,
                Opcode::Nop => 6,
            };
            op.latency = inst.opcode.base_latency();
            for s in &inst.srcs {
                if !s.is_zero() {
                    assert!(
                        (op.nsrc as usize) < op.srcs.len(),
                        "instruction reads more than 3 registers"
                    );
                    op.srcs[op.nsrc as usize] = s.0 % 64;
                    op.nsrc += 1;
                }
            }
            if inst.writes_reg() {
                op.flags |= F_WRITES;
                op.dest = inst.dest.0 % 64;
            }
            if inst.opcode.is_mem() {
                op.flags |= F_MEM;
                if inst.opcode == Opcode::Load {
                    op.flags |= F_LOAD;
                }
                let addr = dyn_block.addrs[addr_ix];
                addr_ix += 1;
                let (lvl, cyc) = hier.data_access(addr);
                op.dcache = match lvl {
                    DataLevel::L1 => ACC_L1,
                    DataLevel::L2 => ACC_L2,
                    DataLevel::Memory => ACC_MEM,
                };
                op.dcache_cyc = cyc;
                if lvl == DataLevel::Memory {
                    dram_uj += em.dram_uj_per_access;
                }
            }
            if inst.opcode.is_branch() {
                op.flags |= F_BRANCH;
                let target_pc = base_pc + BLOCK_STRIDE;
                let correct = pred.predict_and_update(
                    pc,
                    dyn_block.taken,
                    if dyn_block.taken { target_pc } else { 0 },
                );
                if !correct {
                    op.flags |= F_MISPREDICT;
                }
            }
            raw.push(op);
        }
        trace_insts += raw.len();

        let variant = match interner.get(&raw) {
            Some(&v) => v,
            None => {
                let v = u32::try_from(variants.len()).expect("variant count fits u32");
                variants.push(decode_variant(&raw, em, &fu_pool_nf));
                interner.insert(raw.clone(), v);
                v
            }
        };

        match ops.last_mut() {
            Some(last) if last.edge == edge && last.variant == variant => last.reps += 1,
            _ => ops.push(BlockOp {
                edge,
                variant,
                reps: 1,
            }),
        }
    }

    let num_modes = ladder.len();
    let mut period_us = Vec::with_capacity(num_modes);
    let mut vv = Vec::with_capacity(num_modes);
    for (_, point) in ladder.iter() {
        period_us.push(point.period_us());
        vv.push(point.voltage * point.voltage);
    }
    let mut switch_time_us = vec![0.0; num_modes * num_modes];
    let mut switch_energy_uj = vec![0.0; num_modes * num_modes];
    for (a, _) in ladder.iter() {
        for (b, _) in ladder.iter() {
            switch_time_us[a.index() * num_modes + b.index()] =
                transition.mode_time_us(ladder, a, b);
            switch_energy_uj[a.index() * num_modes + b.index()] =
                transition.mode_energy_uj(ladder, a, b);
        }
    }

    let pools = [
        cfgm.int_alus,
        cfgm.int_mult,
        cfgm.int_mult,
        cfgm.fp_adders,
        cfgm.fp_mult,
        cfgm.fp_div,
        1,
    ];
    let mut fu_offsets = [0usize; 8];
    for (p, &n) in pools.iter().enumerate() {
        fu_offsets[p + 1] = fu_offsets[p] + n.max(1);
    }

    if dvs_obs::enabled() {
        dvs_obs::counter("replay.compiles", 1);
        dvs_obs::histogram("replay.variants", variants.len() as f64);
    }
    ReplayBytecode {
        num_edges: cfg.num_edges(),
        num_modes,
        period_us,
        vv,
        switch_time_us,
        switch_energy_uj,
        dram_energy_uj: dram_uj,
        variants,
        ops,
        mem_latency_us: cfgm.mem_latency_us,
        fetch_width: cfgm.fetch_width,
        ruu_size: cfgm.ruu_size,
        lsq_size: cfgm.lsq_size,
        commit_width: cfgm.commit_width,
        mispredict_penalty: f64::from(cfgm.mispredict_penalty),
        fu_offsets,
        trace_blocks: trace.len(),
        trace_insts,
    }
}

/// Converts an interned raw-op sequence to interpreter form and pre-sums
/// its switched capacitance. Every energy term the simulator charges for
/// the occurrence is a capacitance scaled by the block's `V²`, so the sum
/// is a pure function of the ops.
fn decode_variant(raw: &[RawOp], em: &dvs_sim::EnergyModel, fu_pool_nf: &[f64; 7]) -> Variant {
    let mut nf_total = 0.0f64;
    let mut decoded = Vec::with_capacity(raw.len());
    for op in raw {
        if op.icache != 0 {
            nf_total += em.l1_nf;
            if op.icache >= ACC_L2 {
                nf_total += em.l2_nf;
            }
        }
        if op.flags & F_MEM != 0 {
            nf_total += em.l1_nf;
            if op.dcache >= ACC_L2 {
                nf_total += em.l2_nf;
            }
        }
        if op.flags & F_BRANCH != 0 {
            nf_total += em.bpred_nf;
        }
        let reads = f64::from(op.nsrc);
        let writes = if op.flags & F_WRITES != 0 { 1.0 } else { 0.0 };
        nf_total += em.frontend_nf
            + em.window_nf
            + em.clock_nf
            + em.regfile_nf * (reads + writes)
            + fu_pool_nf[op.pool_ix as usize];

        decoded.push(InstOp {
            icache: op.icache,
            flags: op.flags,
            pool_ix: op.pool_ix,
            dest: op.dest,
            nsrc: op.nsrc,
            srcs: op.srcs,
            dcache: op.dcache,
            icache_cyc: f64::from(op.icache_cyc),
            latency: f64::from(op.latency),
            occupancy: if op.pool_ix == 2 || op.pool_ix == 5 {
                f64::from(op.latency)
            } else {
                1.0
            },
            dcache_cyc: f64::from(op.dcache_cyc),
        });
    }
    Variant {
        ops: decoded,
        nf_total,
    }
}
