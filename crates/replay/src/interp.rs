//! The batched interpreter: replays the pure timing recurrence of
//! `dvs_sim`'s scheduled executor over the compiled op stream.

use dvs_sim::{EdgeSchedule, ScheduledRun};

use crate::bytecode::{
    BlockOp, ReplayBytecode, ACC_L2, ACC_MEM, ENTRY_EDGE, F_LOAD, F_MEM, F_MISPREDICT, F_WRITES,
};
use crate::compile::FRONTEND_DEPTH;

/// Mutable per-schedule evaluation state — everything
/// `Machine::run_scheduled` keeps between instructions, minus the memory
/// hierarchy and predictor (already folded into the bytecode). One lane is
/// ~1.4 KB for the paper machine, so a batch of lanes stays cache-resident
/// while the op stream is read once.
struct Lane {
    reg_ready: [f64; 64],
    fu_free: Vec<f64>,
    window_ring: Vec<f64>,
    lsq_ring: Vec<f64>,
    commit_ring: Vec<f64>,
    fetch_us: f64,
    fetch_slots: usize,
    mem_free: f64,
    prev_commit: f64,
    inst_index: usize,
    mem_index: usize,
    pending_redirect: f64,
    cap_weighted_uj: f64,
    transitions: u64,
    transition_energy: f64,
    transition_time: f64,
    mode: usize,
}

impl Lane {
    fn new(code: &ReplayBytecode, initial_mode: usize) -> Self {
        Lane {
            reg_ready: [0.0; 64],
            fu_free: vec![0.0; code.fu_offsets[7]],
            window_ring: vec![0.0; code.ruu_size],
            lsq_ring: vec![0.0; code.lsq_size],
            commit_ring: vec![0.0; code.commit_width],
            fetch_us: 0.0,
            fetch_slots: 0,
            mem_free: 0.0,
            prev_commit: 0.0,
            inst_index: 0,
            mem_index: 0,
            pending_redirect: 0.0,
            cap_weighted_uj: 0.0,
            transitions: 0,
            transition_energy: 0.0,
            transition_time: 0.0,
            mode: initial_mode,
        }
    }

    fn exec_block(&mut self, code: &ReplayBytecode, op: &BlockOp, schedule: &EdgeSchedule) {
        if op.edge != ENTRY_EDGE {
            let target = schedule.edge_modes[op.edge as usize].index();
            if target != self.mode {
                let ix = self.mode * code.num_modes + target;
                let st = code.switch_time_us[ix];
                let se = code.switch_energy_uj[ix];
                let barrier = self.fetch_us.max(self.prev_commit) + st;
                self.fetch_us = barrier;
                self.fetch_slots = 0;
                self.transitions += 1;
                self.transition_energy += se;
                self.transition_time += st;
                self.mode = target;
            }
        }
        // Repeats of a run-length-encoded self-loop arrive via the same
        // edge, whose mode now equals `self.mode`: the simulator's per-
        // occurrence mode-set is silent for them, so the switch check is
        // hoisted out of the rep loop.
        let period = code.period_us[self.mode];
        let vv = code.vv[self.mode];
        let variant = &code.variants[op.variant as usize];
        for _ in 0..op.reps {
            self.fetch_us = self.fetch_us.max(self.pending_redirect);
            if self.pending_redirect > 0.0 {
                self.fetch_slots = 0;
                self.pending_redirect = 0.0;
            }
            for o in &variant.ops {
                match o.icache {
                    ACC_L2 => self.fetch_us += o.icache_cyc * period,
                    ACC_MEM => {
                        let ready = self.fetch_us + o.icache_cyc * period;
                        let start = ready.max(self.mem_free);
                        let end = start + code.mem_latency_us;
                        self.mem_free = end;
                        self.fetch_us = end;
                    }
                    _ => {}
                }

                if self.fetch_slots >= code.fetch_width {
                    self.fetch_us += period;
                    self.fetch_slots = 0;
                }
                let fetch_time = self.fetch_us;
                self.fetch_slots += 1;

                let dispatch_ready = fetch_time + FRONTEND_DEPTH * period;
                let window_gate = self.window_ring[self.inst_index % code.ruu_size];
                let mut src_ready = 0.0f64;
                for &s in &o.srcs[..o.nsrc as usize] {
                    src_ready = src_ready.max(self.reg_ready[s as usize]);
                }

                // First-minimum unit selection, matching the simulator's
                // `Iterator::min_by` tie-breaking.
                let lo = code.fu_offsets[o.pool_ix as usize];
                let hi = code.fu_offsets[o.pool_ix as usize + 1];
                let mut unit_ix = lo;
                let mut unit_free = self.fu_free[lo];
                for j in lo + 1..hi {
                    if self.fu_free[j] < unit_free {
                        unit_free = self.fu_free[j];
                        unit_ix = j;
                    }
                }

                let mut issue = dispatch_ready
                    .max(window_gate)
                    .max(src_ready)
                    .max(unit_free);
                let is_mem = o.flags & F_MEM != 0;
                if is_mem {
                    issue = issue.max(self.lsq_ring[self.mem_index % code.lsq_size]);
                }
                self.fu_free[unit_ix] = issue + o.occupancy * period;

                let mut complete = issue + o.latency * period;
                if is_mem {
                    if o.dcache == ACC_MEM {
                        let ready = issue + (1.0 + o.dcache_cyc) * period;
                        let start = ready.max(self.mem_free);
                        let end = start + code.mem_latency_us;
                        self.mem_free = end;
                        if o.flags & F_LOAD != 0 {
                            complete = end;
                        }
                    } else if o.flags & F_LOAD != 0 {
                        complete = issue + (1.0 + o.dcache_cyc) * period;
                    }
                }

                if o.flags & F_MISPREDICT != 0 {
                    self.pending_redirect = self
                        .pending_redirect
                        .max(complete + code.mispredict_penalty * period);
                }

                let commit = (complete + period)
                    .max(self.prev_commit)
                    .max(self.commit_ring[self.inst_index % code.commit_width] + period);
                self.prev_commit = commit;
                self.commit_ring[self.inst_index % code.commit_width] = commit;
                self.window_ring[self.inst_index % code.ruu_size] = commit;
                if is_mem {
                    self.lsq_ring[self.mem_index % code.lsq_size] = commit;
                    self.mem_index += 1;
                }
                if o.flags & F_WRITES != 0 {
                    self.reg_ready[o.dest as usize] = complete;
                }
                self.inst_index += 1;
            }
            self.cap_weighted_uj += variant.nf_total * vv * 1e-3;
        }
    }

    fn finish(&self, code: &ReplayBytecode) -> ScheduledRun {
        ScheduledRun {
            time_us: self.prev_commit,
            processor_energy_uj: self.cap_weighted_uj + self.transition_energy,
            dram_energy_uj: code.dram_energy_uj,
            transitions: self.transitions,
            transition_energy_uj: self.transition_energy,
            transition_time_us: self.transition_time,
        }
    }
}

impl ReplayBytecode {
    fn check_schedule(&self, schedule: &EdgeSchedule) {
        assert_eq!(
            schedule.edge_modes.len(),
            self.num_edges,
            "schedule must cover every edge"
        );
        assert!(
            schedule.initial.index() < self.num_modes
                && schedule
                    .edge_modes
                    .iter()
                    .all(|m| m.index() < self.num_modes),
            "schedule references a mode outside the compiled ladder"
        );
    }

    /// Evaluates one schedule, reproducing what
    /// [`dvs_sim::Machine::run_scheduled`] would report for the compiled
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover every edge of the compiled
    /// CFG or names a mode outside the compiled ladder.
    #[must_use]
    pub fn replay(&self, schedule: &EdgeSchedule) -> ScheduledRun {
        self.check_schedule(schedule);
        let mut lane = Lane::new(self, schedule.initial.index());
        for op in &self.ops {
            lane.exec_block(self, op, schedule);
        }
        if dvs_obs::enabled() {
            dvs_obs::counter("replay.runs", 1);
        }
        lane.finish(self)
    }

    /// Evaluates many schedules against the one compiled trace in a single
    /// pass over the op stream: the stream (and each shared variant) is
    /// read once per block step while every lane's ~1.4 KB state stays
    /// hot. Results are ordered as the input.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ReplayBytecode::replay`], for
    /// any schedule in the batch.
    #[must_use]
    pub fn replay_batch(&self, schedules: &[EdgeSchedule]) -> Vec<ScheduledRun> {
        for s in schedules {
            self.check_schedule(s);
        }
        let mut lanes: Vec<Lane> = schedules
            .iter()
            .map(|s| Lane::new(self, s.initial.index()))
            .collect();
        for op in &self.ops {
            for (lane, schedule) in lanes.iter_mut().zip(schedules) {
                lane.exec_block(self, op, schedule);
            }
        }
        if dvs_obs::enabled() {
            dvs_obs::counter("replay.runs", schedules.len() as u64);
        }
        lanes.iter().map(|l| l.finish(self)).collect()
    }
}

/// Evaluates one schedule against many compiled traces (the "score this
/// schedule under input X" direction): each program is one pass. All
/// programs must have been compiled from the same CFG (the schedule must
/// cover each program's edge set).
#[must_use]
pub fn replay_each<'a, I>(codes: I, schedule: &EdgeSchedule) -> Vec<ScheduledRun>
where
    I: IntoIterator<Item = &'a ReplayBytecode>,
{
    codes.into_iter().map(|c| c.replay(schedule)).collect()
}
