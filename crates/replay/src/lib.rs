//! Schedule bytecode: a compact linear program compiled from one trace
//! executed on one machine, evaluated by a batched interpreter.
//!
//! The cycle-level simulator ([`dvs_sim::Machine::run_scheduled`]) re-runs
//! the full memory hierarchy and branch predictor on every schedule it
//! evaluates — yet those structures never observe the schedule. Cache and
//! TLB outcomes depend only on the address stream, branch outcomes only on
//! the pc/taken stream; *timing* is the only thing a DVS mode changes. The
//! compiler in this crate exploits that split: it runs the hierarchy and
//! predictor exactly once, records each dynamic instruction's outcomes as a
//! small integer op, and emits a linear bytecode whose interpreter replays
//! only the pure floating-point timing recurrence.
//!
//! Guarantees relative to the simulator (see `tests/replay_differential.rs`
//! at the workspace root for the fuzzed proof):
//!
//! * `time_us`, `transition_*` and `transitions` are **bit-identical**: the
//!   interpreter performs the same f64 operations in the same order as
//!   `run_scheduled`.
//! * `processor_energy_uj` agrees to ~1e-15 relative (well inside the 1e-6
//!   differential-testing tolerance): energy terms are pre-summed per block
//!   occurrence as switched capacitance and scaled by `V²` at replay time,
//!   which reassociates the simulator's sum but changes no term.
//! * `dram_energy_uj` is schedule-independent and baked in at compile time,
//!   accumulated in trace order so it, too, is bit-identical.
//!
//! The bytecode is three tables:
//!
//! * **variants** — deduplicated per-occurrence instruction-op sequences
//!   (a loop body that hits L1 on every warm iteration compiles to one
//!   shared variant), each carrying its pre-summed switched capacitance;
//! * **block ops** — the trace as `(arrival edge, variant, trip count)`
//!   triples, run-length-encoded over consecutive repeats (self-loops);
//! * **mode tables** — per-mode period/`V²` and the regulator's full
//!   `modes × modes` transition time/energy matrices.
//!
//! Evaluating a schedule touches no allocator, no cache model and no
//! predictor: it is a single pass over the block-op stream. Batched entry
//! points amortize that pass across many schedules (one trace, many
//! candidate schedules) or many compiled traces (one schedule, many
//! inputs).

mod bytecode;
mod compile;
mod interp;

pub use bytecode::{ReplayBytecode, ReplayStats};
pub use compile::compile;
pub use interp::replay_each;

#[cfg(test)]
mod tests;
