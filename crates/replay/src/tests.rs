use dvs_ir::{Cfg, CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{EdgeSchedule, EnergyModel, Machine, ScheduledRun, SimConfig, Trace, TraceBuilder};
use dvs_vf::{AlphaPower, ModeId, TransitionModel, VoltageLadder};

use crate::{compile, replay_each};

/// A loop nest with memory traffic, multiplies, a divide and branches —
/// every op class the interpreter has a path for. Data addresses stride
/// far enough that the tiny test caches miss at several levels.
fn program(iters: usize, stride: u64) -> (Cfg, Trace) {
    let mut b = CfgBuilder::new("replay-prog");
    let e = b.block("entry");
    let h = b.block("head");
    let body = b.block("body");
    let x = b.block("exit");
    b.push(e, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1)]));
    b.push(h, Inst::load(Reg(2), Reg(1), MemWidth::B4));
    b.push(h, Inst::branch(Reg(2)));
    b.push(body, Inst::alu(Opcode::IntMul, Reg(3), &[Reg(2), Reg(2)]));
    b.push(body, Inst::alu(Opcode::IntDiv, Reg(4), &[Reg(3), Reg(1)]));
    b.push(body, Inst::store(Reg(4), Reg(1), MemWidth::B4));
    b.push(body, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1), Reg(4)]));
    b.edge(e, h);
    b.edge(h, body);
    b.edge(body, h);
    b.edge(h, x);
    let cfg = b.finish(e, x).unwrap();
    let (e, h, body, x) = (
        cfg.entry(),
        cfg.block_by_label("head").unwrap(),
        cfg.block_by_label("body").unwrap(),
        cfg.exit(),
    );
    let mut tb = TraceBuilder::new(&cfg);
    tb.step(e, vec![]);
    for i in 0..iters {
        tb.step(h, vec![0x1000 + i as u64 * stride]);
        tb.step(body, vec![0x9000 + i as u64 * stride]);
    }
    tb.step(h, vec![0x1000]);
    tb.step(x, vec![]);
    let trace = tb.finish().unwrap();
    (cfg, trace)
}

fn tiny_machine() -> Machine {
    Machine::new(SimConfig::tiny_for_tests(), EnergyModel::default())
}

fn ladder() -> VoltageLadder {
    VoltageLadder::xscale3(&AlphaPower::paper())
}

fn assert_matches_sim(fast: &ScheduledRun, sim: &ScheduledRun) {
    assert_eq!(fast.time_us, sim.time_us, "time must be bit-identical");
    assert_eq!(fast.transitions, sim.transitions);
    assert_eq!(fast.transition_time_us, sim.transition_time_us);
    assert_eq!(fast.transition_energy_uj, sim.transition_energy_uj);
    assert_eq!(fast.dram_energy_uj, sim.dram_energy_uj);
    let de = (fast.processor_energy_uj - sim.processor_energy_uj).abs();
    assert!(
        de <= 1e-6 * sim.processor_energy_uj.abs().max(1.0),
        "energy {} vs sim {}",
        fast.processor_energy_uj,
        sim.processor_energy_uj
    );
}

#[test]
fn uniform_schedules_match_simulator_per_mode() {
    let (cfg, trace) = program(50, 4096);
    let m = tiny_machine();
    let l = ladder();
    let tm = TransitionModel::with_capacitance_uf(10.0);
    let code = compile(&m, &cfg, &trace, &l, &tm);
    for (mode, _) in l.iter() {
        let sched = EdgeSchedule::uniform(&cfg, mode);
        let sim = m.run_scheduled(&cfg, &trace, &l, &sched, &tm);
        let fast = code.replay(&sched);
        assert_matches_sim(&fast, &sim);
        assert_eq!(fast.transitions, 0);
    }
}

#[test]
fn switching_schedule_matches_simulator_including_transitions() {
    let (cfg, trace) = program(40, 64);
    let m = Machine::paper_default();
    let l = ladder();
    let tm = TransitionModel::with_capacitance_uf(1.0);
    let h = cfg.block_by_label("head").unwrap();
    let body = cfg.block_by_label("body").unwrap();
    let mut sched = EdgeSchedule::uniform(&cfg, ModeId(2));
    sched.edge_modes[cfg.edge_between(h, body).unwrap().index()] = ModeId(0);
    sched.edge_modes[cfg.edge_between(body, h).unwrap().index()] = ModeId(2);
    let code = compile(&m, &cfg, &trace, &l, &tm);
    let sim = m.run_scheduled(&cfg, &trace, &l, &sched, &tm);
    let fast = code.replay(&sched);
    assert_matches_sim(&fast, &sim);
    assert_eq!(fast.transitions, 80);
}

#[test]
fn self_loop_blocks_run_length_encode_and_match() {
    let mut b = CfgBuilder::new("selfloop");
    let e = b.block("entry");
    let s = b.block("spin");
    let x = b.block("exit");
    b.push(s, Inst::alu(Opcode::IntAlu, Reg(5), &[Reg(5)]));
    b.push(s, Inst::branch(Reg(5)));
    b.edge(e, s);
    b.edge(s, s);
    b.edge(s, x);
    let cfg = b.finish(e, x).unwrap();
    let (e, s, x) = (cfg.entry(), cfg.block_by_label("spin").unwrap(), cfg.exit());
    let mut tb = TraceBuilder::new(&cfg);
    tb.step(e, vec![]);
    for _ in 0..200 {
        tb.step(s, vec![]);
    }
    tb.step(x, vec![]);
    let trace = tb.finish().unwrap();

    let m = tiny_machine();
    let l = ladder();
    let tm = TransitionModel::free();
    let code = compile(&m, &cfg, &trace, &l, &tm);
    // 199 of the 200 spins arrive via the same self-loop edge with the
    // same warm-cache ops: they must collapse into trip counts.
    let stats = code.stats();
    assert_eq!(stats.trace_blocks, 202);
    assert!(
        stats.block_ops < 10,
        "self-loop failed to RLE: {} block ops",
        stats.block_ops
    );
    for (mode, _) in l.iter() {
        let sched = EdgeSchedule::uniform(&cfg, mode);
        assert_matches_sim(
            &code.replay(&sched),
            &m.run_scheduled(&cfg, &trace, &l, &sched, &tm),
        );
    }
}

#[test]
fn variant_interning_compresses_warm_loops() {
    let (cfg, trace) = program(100, 0);
    let m = Machine::paper_default();
    let code = compile(&m, &cfg, &trace, &ladder(), &TransitionModel::free());
    let stats = code.stats();
    assert_eq!(stats.trace_blocks, trace.len());
    assert!(
        stats.variants * 8 < stats.trace_blocks,
        "expected >=8x interning on a warm loop: {} variants for {} occurrences",
        stats.variants,
        stats.trace_blocks
    );
    assert!(stats.variant_insts < stats.trace_insts);
}

#[test]
fn batch_replay_is_bit_identical_to_individual_replays() {
    let (cfg, trace) = program(30, 2048);
    let m = tiny_machine();
    let l = ladder();
    let tm = TransitionModel::with_capacitance_uf(0.5);
    let code = compile(&m, &cfg, &trace, &l, &tm);
    let mut schedules = Vec::new();
    for (mode, _) in l.iter() {
        schedules.push(EdgeSchedule::uniform(&cfg, mode));
    }
    let mut alt = EdgeSchedule::uniform(&cfg, ModeId(1));
    for (i, em) in alt.edge_modes.iter_mut().enumerate() {
        *em = ModeId(i % l.len());
    }
    schedules.push(alt);
    let batch = code.replay_batch(&schedules);
    for (s, got) in schedules.iter().zip(&batch) {
        assert_eq!(*got, code.replay(s));
    }
    let each = replay_each([&code, &code], &schedules[0]);
    assert_eq!(each[0], each[1]);
}

#[test]
fn injected_cost_fault_is_visible() {
    let (cfg, trace) = program(20, 512);
    let m = tiny_machine();
    let l = ladder();
    let tm = TransitionModel::free();
    let sched = EdgeSchedule::uniform(&cfg, ModeId(1));
    let clean = compile(&m, &cfg, &trace, &l, &tm).replay(&sched);
    for seed in 0..8u64 {
        let mut code = compile(&m, &cfg, &trace, &l, &tm);
        code.inject_cost_fault(seed);
        let faulty = code.replay(&sched);
        assert!(
            faulty.processor_energy_uj > clean.processor_energy_uj,
            "seed {seed}: off-by-one cost did not raise energy"
        );
        assert!(
            faulty.time_us >= clean.time_us,
            "seed {seed}: extra latency shortened the run"
        );
    }
}

#[test]
#[should_panic(expected = "schedule must cover every edge")]
fn schedule_edge_count_is_enforced() {
    let (cfg, trace) = program(3, 0);
    let m = tiny_machine();
    let code = compile(&m, &cfg, &trace, &ladder(), &TransitionModel::free());
    let bad = EdgeSchedule {
        initial: ModeId(0),
        edge_modes: vec![ModeId(0)],
    };
    let _ = code.replay(&bad);
}
