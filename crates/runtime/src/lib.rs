//! # dvs-runtime — scoped work-stealing thread pool
//!
//! A zero-dependency parallel runtime for the DVS workspace, built only on
//! `std`: [`std::thread::scope`] for structured borrowing, per-worker
//! [`Mutex`]-guarded deques with work stealing for load balance, and a
//! [`Condvar`]-backed [`channel`] for streaming results out of a running
//! pool.
//!
//! The design goal is *determinism first*: [`Pool::map`] always returns
//! results ordered by task index, regardless of how many workers ran or
//! which worker executed which task. Callers that need bit-identical output
//! across `--jobs 1` and `--jobs N` only have to ensure each task is a pure
//! function of its input; the runtime never reorders outputs.
//!
//! ## Scheduling
//!
//! Tasks are indexed `0..n`. Worker `w` starts with a contiguous chunk of
//! indices in its own deque and pops from the *back* (LIFO — hot in cache,
//! and the chunk is walked in order because it was pushed reversed). When a
//! worker's own deque is empty it steals from the *front* of a victim's
//! deque (FIFO — takes the work the owner will reach last, minimizing
//! contention). No task is ever enqueued after the scope starts, so
//! termination is simply "every deque is empty"; no condition variable is
//! needed on the deques themselves.
//!
//! ```
//! use dvs_runtime::Pool;
//! let pool = Pool::new(4);
//! let squares = pool.map((0..100u64).collect(), |_idx, x| x * x);
//! assert_eq!(squares[7], 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Environment variable consulted by [`Pool::from_env`] (and the CLIs'
/// `--jobs` default) to pick a worker count.
pub const JOBS_ENV: &str = "DVS_JOBS";

/// A fixed-width scoped thread pool.
///
/// `Pool` is cheap to construct — it holds the worker count plus one shared
/// counter of not-yet-finished tasks ([`Pool::queued`]). Threads are
/// spawned per [`Pool::map`] call inside a [`std::thread::scope`], so
/// borrowed data may flow into tasks freely and no thread outlives the
/// call. Clones share the queue-depth counter, so a supervisor holding a
/// clone can observe saturation of maps running on other threads.
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
    /// Tasks submitted to a `map`/`run` on this pool (or a clone) that have
    /// not finished yet. Exported as the `runtime.pool.queued` gauge.
    queued: Arc<AtomicUsize>,
}

impl Pool {
    /// A pool that runs `jobs` tasks concurrently. `0` is treated as `1`.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Pool {
            jobs: jobs.max(1),
            queued: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// A pool sized from the environment: the `DVS_JOBS` variable when set
    /// to a positive integer, otherwise [`std::thread::available_parallelism`]
    /// (falling back to 1 when even that is unavailable).
    #[must_use]
    pub fn from_env() -> Self {
        let jobs = std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Pool::new(jobs)
    }

    /// The number of concurrent workers this pool uses.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// How many tasks submitted to this pool (or a clone of it) have not
    /// finished yet. `0` whenever no `map`/`run` is in flight.
    ///
    /// This is the pool's saturation signal: an admission controller that
    /// sees `queued()` grow past the worker count knows new work will wait.
    /// The same value is published as the `runtime.pool.queued` dvs-obs
    /// gauge every time it changes (when collection is enabled).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Adjusts the queued-task counter and republishes the gauge.
    fn track_queued(&self, add: usize, sub: usize) {
        let before = if add > 0 {
            self.queued.fetch_add(add, Ordering::Relaxed) + add
        } else {
            self.queued.fetch_sub(sub, Ordering::Relaxed) - sub
        };
        if dvs_obs::enabled() {
            #[allow(clippy::cast_precision_loss)]
            dvs_obs::gauge("runtime.pool.queued", before as f64);
        }
    }

    /// Applies `f` to every item, in parallel, returning results **in task
    /// order** (`out[i]` is `f(i, items[i])`).
    ///
    /// The calling thread participates as worker 0, so `map` with one job
    /// (or one item) degenerates to a plain sequential loop with no thread
    /// spawned at all.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` after the scope joins (the panic unwinds
    /// out of [`std::thread::scope`]).
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(n);
        self.track_queued(n, 0);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let out = f(i, item);
                    self.track_queued(0, 1);
                    out
                })
                .collect();
        }

        // One slot per task. Each index lives in exactly one deque, so the
        // `take()` below always finds the item; the slot exists only to move
        // owned items into whichever worker claims the index.
        let tasks: Vec<Mutex<Option<I>>> =
            items.into_iter().map(|it| Mutex::new(Some(it))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        // Contiguous chunk per worker, pushed in reverse so LIFO pops walk
        // the chunk in ascending index order.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = n * w / workers;
                let hi = n * (w + 1) / workers;
                Mutex::new((lo..hi).rev().collect())
            })
            .collect();

        let worker = |me: usize| loop {
            // Own deque first (back = most recently pushed = lowest
            // remaining index of our chunk).
            let mut claimed = deques[me].lock().expect("deque poisoned").pop_back();
            if claimed.is_none() {
                // Steal oldest work from the first non-empty victim.
                for off in 1..workers {
                    let victim = (me + off) % workers;
                    claimed = deques[victim].lock().expect("deque poisoned").pop_front();
                    if claimed.is_some() {
                        break;
                    }
                }
            }
            let Some(idx) = claimed else {
                // Every deque was empty; nothing is ever re-enqueued.
                return;
            };
            let item = tasks[idx]
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("task index claimed twice");
            let out = f(idx, item);
            *results[idx].lock().expect("result slot poisoned") = Some(out);
            self.track_queued(0, 1);
        };

        std::thread::scope(|s| {
            for w in 1..workers {
                let worker = &worker;
                s.spawn(move || worker(w));
            }
            worker(0);
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without storing a result")
            })
            .collect()
    }

    /// Runs a batch of independent closures, returning their results in
    /// input order. Convenience wrapper over [`Pool::map`].
    pub fn run<T, F>(&self, thunks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let cell: Vec<Mutex<Option<F>>> = thunks.into_iter().map(|f| Mutex::new(Some(f))).collect();
        self.map(cell, |_, f| {
            let f = f
                .into_inner()
                .expect("thunk poisoned")
                .expect("thunk taken");
            f()
        })
    }
}

impl Default for Pool {
    /// Equivalent to [`Pool::from_env`].
    fn default() -> Self {
        Pool::from_env()
    }
}

// ---------------------------------------------------------------------------
// A minimal MPSC channel (Mutex + Condvar) for streaming results out of an
// in-flight `Pool::map` — e.g. the bench harness prints each experiment's
// report the moment it completes while the pool keeps working.
// ---------------------------------------------------------------------------

struct ChannelState<T> {
    queue: VecDeque<T>,
    senders: usize,
}

struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    ready: Condvar,
}

/// The sending half of [`channel`]. Cloneable; the channel closes when the
/// last sender is dropped.
pub struct Sender<T>(Arc<Channel<T>>);

/// The receiving half of [`channel`].
pub struct Receiver<T>(Arc<Channel<T>>);

/// Creates an unbounded multi-producer single-consumer channel built on a
/// `Mutex`-guarded deque and a `Condvar`.
///
/// Unlike [`std::sync::mpsc`], both halves are plain structs in this crate,
/// so the workspace keeps a single, auditable concurrency toolbox.
#[must_use]
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let ch = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            senders: 1,
        }),
        ready: Condvar::new(),
    });
    (Sender(Arc::clone(&ch)), Receiver(ch))
}

impl<T> Sender<T> {
    /// Enqueues a value and wakes the receiver.
    pub fn send(&self, value: T) {
        let mut st = self.0.state.lock().expect("channel poisoned");
        st.queue.push_back(value);
        drop(st);
        self.0.ready.notify_one();
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().expect("channel poisoned").senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("channel poisoned");
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            self.0.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives, returning `None` once every sender has
    /// been dropped and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.0.state.lock().expect("channel poisoned");
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Some(v);
            }
            if st.senders == 0 {
                return None;
            }
            st = self.0.ready.wait(st).expect("channel poisoned");
        }
    }

    /// Drains the channel into an iterator (blocking between items).
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_task_order() {
        let pool = Pool::new(4);
        let out = pool.map((0..1000u64).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn jobs_one_equals_jobs_many() {
        let work = |_: usize, x: u64| {
            // A tiny uneven workload so stealing actually happens.
            (0..(x % 37)).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b))
        };
        let seq = Pool::new(1).map((0..512u64).collect(), work);
        let par = Pool::new(8).map((0..512u64).collect(), work);
        assert_eq!(seq, par);
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let hits = AtomicUsize::new(0);
        let pool = Pool::new(6);
        let out = pool.map((0..257usize).collect(), |_, x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn workers_actually_steal_unbalanced_work() {
        // Front-loaded cost: worker 0's chunk is far heavier, so the other
        // workers must steal to finish. We only assert correctness (the
        // pool can't deadlock or drop tasks under imbalance).
        let pool = Pool::new(4);
        let out = pool.map((0..64u64).collect(), |i, x| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn map_runs_in_parallel() {
        // 8 tasks × 30 ms each: sequential would need ≥ 240 ms. Allow a
        // generous margin for a loaded CI host — just require clear overlap.
        let pool = Pool::new(8);
        let t0 = std::time::Instant::now();
        pool.map((0..8u32).collect(), |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(30));
        });
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(200),
            "8 sleeps did not overlap: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn run_executes_closures_in_order() {
        let pool = Pool::new(3);
        let out = pool.run((0..20).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        let empty: Vec<u8> = pool.map(Vec::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(pool.map(vec![9u8], |_, x| x), vec![9]);
    }

    #[test]
    fn pool_zero_means_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
    }

    #[test]
    fn queued_tracks_outstanding_tasks_and_drains_to_zero() {
        let pool = Pool::new(2);
        assert_eq!(pool.queued(), 0);
        // A clone observes the same counter from another thread while the
        // original is blocked inside `map` — the serve daemon's admission
        // control does exactly this.
        let observer = pool.clone();
        let saw_depth = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..200 {
                    saw_depth.fetch_max(observer.queued(), Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
            pool.map((0..16u64).collect(), |_, x| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                x
            });
        });
        assert_eq!(pool.queued(), 0, "all tasks finished");
        assert!(
            saw_depth.load(Ordering::Relaxed) > 0,
            "observer never saw a nonzero queue depth"
        );
    }

    #[test]
    fn channel_streams_and_closes() {
        let (tx, rx) = channel::<usize>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..50 {
                    tx.send(i);
                }
            });
            s.spawn(move || {
                for i in 50..100 {
                    tx2.send(i);
                }
            });
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn channel_recv_after_close_returns_none() {
        let (tx, rx) = channel::<u8>();
        tx.send(1);
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }
}
