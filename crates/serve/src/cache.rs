//! The content-addressed solve cache.
//!
//! Keys are 64-bit [`dvs_compiler::fingerprint::Fnv64`] digests of the
//! canonical request encoding; because 64 bits can collide in principle,
//! every entry also stores the canonical string itself and a lookup only
//! hits when the strings match — a collision degrades to a miss, never to
//! a wrong answer.
//!
//! Eviction is least-recently-used under a byte budget. Recency is
//! tracked with a lazy stamp deque: every touch pushes `(stamp, key)` and
//! bumps the entry's own stamp; stale deque entries (whose stamp no
//! longer matches the entry's) are discarded when they surface during
//! eviction, so touches are O(1) and eviction is amortized O(1).

use std::collections::HashMap;
use std::collections::VecDeque;

/// Fixed per-entry bookkeeping cost charged against the byte budget, on
/// top of the canonical-request and result-body strings.
const ENTRY_OVERHEAD_BYTES: usize = 64;

struct Entry {
    /// Canonical request string — the collision guard.
    canonical: String,
    /// The cached result body (a serialized JSON value).
    body: String,
    /// Recency stamp; only the deque record carrying this exact stamp is
    /// live, older records for the same key are stale.
    stamp: u64,
}

impl Entry {
    fn cost(&self) -> usize {
        self.canonical.len() + self.body.len() + ENTRY_OVERHEAD_BYTES
    }
}

/// Monotonic counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored body.
    pub hits: u64,
    /// Lookups that found nothing (or a colliding digest).
    pub misses: u64,
    /// Entries removed to satisfy the byte budget.
    pub evictions: u64,
    /// Bodies stored (excluding over-budget bodies that were skipped).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub used_bytes: usize,
    /// The configured budget.
    pub capacity_bytes: usize,
}

/// An LRU, byte-budgeted map from request digest to result body.
///
/// Not internally synchronized — the server wraps it in a `Mutex`.
pub struct SolveCache {
    entries: HashMap<u64, Entry>,
    /// `(stamp, key)` in touch order; lazily pruned of stale records.
    recency: VecDeque<(u64, u64)>,
    next_stamp: u64,
    used_bytes: usize,
    capacity_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCache")
            .field("entries", &self.entries.len())
            .field("used_bytes", &self.used_bytes)
            .field("capacity_bytes", &self.capacity_bytes)
            .finish_non_exhaustive()
    }
}

impl SolveCache {
    /// An empty cache that will hold at most `capacity_bytes` of entries
    /// (canonical keys + bodies + fixed per-entry overhead).
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        SolveCache {
            entries: HashMap::new(),
            recency: VecDeque::new(),
            next_stamp: 0,
            used_bytes: 0,
            capacity_bytes,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    fn touch(stamp: &mut u64, next: &mut u64, recency: &mut VecDeque<(u64, u64)>, key: u64) {
        *next += 1;
        *stamp = *next;
        recency.push_back((*next, key));
    }

    /// Looks up `key`, verifying the canonical string, and refreshes the
    /// entry's recency on a hit. Records the hit/miss in both the local
    /// stats and the `serve.cache.*` dvs-obs counters.
    pub fn get(&mut self, key: u64, canonical: &str) -> Option<String> {
        match self.entries.get_mut(&key) {
            Some(e) if e.canonical == canonical => {
                Self::touch(&mut e.stamp, &mut self.next_stamp, &mut self.recency, key);
                self.hits += 1;
                if dvs_obs::enabled() {
                    dvs_obs::counter("serve.cache.hits", 1);
                }
                Some(e.body.clone())
            }
            _ => {
                self.misses += 1;
                if dvs_obs::enabled() {
                    dvs_obs::counter("serve.cache.misses", 1);
                }
                None
            }
        }
    }

    /// Stores `body` under `key`, evicting least-recently-used entries
    /// until the budget holds. A body too large to ever fit is skipped
    /// (the cache stays as it was); re-inserting an existing key replaces
    /// its body and refreshes its recency.
    pub fn insert(&mut self, key: u64, canonical: &str, body: String) {
        if let Some(old) = self.entries.remove(&key) {
            self.used_bytes -= old.cost();
        }
        let entry = Entry {
            canonical: canonical.to_string(),
            body,
            stamp: 0,
        };
        if entry.cost() > self.capacity_bytes {
            self.publish_gauge();
            return;
        }
        self.used_bytes += entry.cost();
        self.entries.insert(key, entry);
        let e = self.entries.get_mut(&key).expect("just inserted");
        Self::touch(&mut e.stamp, &mut self.next_stamp, &mut self.recency, key);
        self.insertions += 1;
        self.evict_to_budget();
        self.publish_gauge();
    }

    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.capacity_bytes {
            let Some((stamp, key)) = self.recency.pop_front() else {
                debug_assert!(
                    false,
                    "byte accounting drifted: over budget with no entries"
                );
                return;
            };
            // Stale record: the entry was touched again later (or already
            // evicted and possibly re-inserted); its live record is further
            // back in the deque.
            let live = self.entries.get(&key).is_some_and(|e| e.stamp == stamp);
            if !live {
                continue;
            }
            let e = self.entries.remove(&key).expect("checked above");
            self.used_bytes -= e.cost();
            self.evictions += 1;
            if dvs_obs::enabled() {
                dvs_obs::counter("serve.cache.evictions", 1);
            }
        }
    }

    fn publish_gauge(&self) {
        if dvs_obs::enabled() {
            #[allow(clippy::cast_precision_loss)]
            dvs_obs::gauge("serve.cache.bytes", self.used_bytes as f64);
        }
    }

    /// A snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.entries.len(),
            used_bytes: self.used_bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: usize) -> String {
        "x".repeat(n)
    }

    #[test]
    fn hit_returns_stored_body_and_counts() {
        let mut c = SolveCache::new(4096);
        assert_eq!(c.get(1, "req-1"), None);
        c.insert(1, "req-1", body(10));
        assert_eq!(c.get(1, "req-1").as_deref(), Some(&body(10)[..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.insertions), (1, 1, 1, 1));
    }

    #[test]
    fn digest_collision_is_a_miss_not_a_wrong_answer() {
        let mut c = SolveCache::new(4096);
        c.insert(1, "req-a", body(10));
        // Same digest, different canonical request: must not return req-a's
        // body.
        assert_eq!(c.get(1, "req-b"), None);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn evicts_least_recently_used_under_byte_pressure() {
        // Each entry costs 100 + canonical + overhead; make room for ~3.
        let per = 100 + 5 + ENTRY_OVERHEAD_BYTES;
        let mut c = SolveCache::new(3 * per);
        c.insert(1, "req-1", body(100));
        c.insert(2, "req-2", body(100));
        c.insert(3, "req-3", body(100));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1, "req-1").is_some());
        c.insert(4, "req-4", body(100));
        assert_eq!(c.get(2, "req-2"), None, "LRU entry evicted");
        assert!(c.get(1, "req-1").is_some(), "recently used survives");
        assert!(c.get(3, "req-3").is_some());
        assert!(c.get(4, "req-4").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 3);
        assert!(s.used_bytes <= s.capacity_bytes);
    }

    #[test]
    fn oversized_body_is_skipped_without_wiping_the_cache() {
        let mut c = SolveCache::new(300);
        c.insert(1, "req-1", body(50));
        c.insert(2, "req-2", body(10_000));
        assert!(c.get(1, "req-1").is_some(), "existing entry untouched");
        assert_eq!(c.get(2, "req-2"), None);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn reinsert_replaces_body_and_accounting_stays_exact() {
        let mut c = SolveCache::new(4096);
        c.insert(1, "req-1", body(100));
        let used_before = c.stats().used_bytes;
        c.insert(1, "req-1", body(10));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.used_bytes, used_before - 90);
        assert_eq!(c.get(1, "req-1").as_deref(), Some(&body(10)[..]));
    }

    #[test]
    fn stale_recency_records_do_not_evict_live_entries() {
        let per = 100 + 5 + ENTRY_OVERHEAD_BYTES;
        let mut c = SolveCache::new(2 * per);
        c.insert(1, "req-1", body(100));
        // Pile up stale records for key 1.
        for _ in 0..50 {
            assert!(c.get(1, "req-1").is_some());
        }
        c.insert(2, "req-2", body(100));
        c.insert(3, "req-3", body(100));
        // Key 1 was touched most recently before 2 and 3; the eviction to
        // fit 3 must skip its stale records and take key 2... but key 1's
        // live stamp is older than 2's insert, so key 1 goes. Either way,
        // exactly one eviction and byte accounting holds.
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.used_bytes <= s.capacity_bytes);
        assert!(c.get(3, "req-3").is_some(), "newest entry resident");
    }
}
