//! A blocking client for the serve protocol.

use crate::protocol::{read_frame, write_frame, Request};
use dvs_obs::json::Json;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response envelope.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Whether the request succeeded.
    pub ok: bool,
    /// The op this replies to.
    pub op: String,
    /// For solve replies: whether the body came from the cache.
    pub cached: bool,
    /// Server-side handling time in microseconds (queue wait + solve for
    /// cold requests, lookup only for hits).
    pub server_us: f64,
    /// Machine-readable failure kind (`busy`, `timeout`, ...), when not ok.
    pub kind: Option<String>,
    /// Human-readable failure message, when not ok.
    pub error: Option<String>,
    /// The per-request trace tree (`{"trace_id", "spans": [...]}`), when
    /// the server traced this request.
    pub trace: Option<Json>,
    /// The result payload, when ok.
    pub result: Option<Json>,
}

impl Reply {
    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// A message describing why the frame is not a valid envelope.
    pub fn parse(frame: &str) -> Result<Reply, String> {
        let v = Json::parse(frame).map_err(|e| format!("invalid response JSON: {e}"))?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("response missing `ok`")?;
        Ok(Reply {
            ok,
            op: v
                .get("op")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            server_us: v.get("server_us").and_then(Json::as_f64).unwrap_or(0.0),
            kind: v
                .get("kind")
                .and_then(Json::as_str)
                .map(ToString::to_string),
            error: v
                .get("error")
                .and_then(Json::as_str)
                .map(ToString::to_string),
            trace: v.get("trace").cloned(),
            result: v.get("result").cloned(),
        })
    }
}

/// One connection to a serve daemon. Requests are pipelinable in
/// principle but this client is strictly request/reply.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (host:port). With a timeout, both the connect
    /// and every subsequent read/write are bounded by it; client code
    /// waiting on a cold solve should add slack on top of the server-side
    /// request timeout or pass `None`.
    ///
    /// # Errors
    ///
    /// Address resolution and connection errors.
    pub fn connect(addr: &str, timeout: Option<Duration>) -> io::Result<Client> {
        let stream = match timeout {
            None => TcpStream::connect(addr)?,
            Some(t) => {
                let mut last = io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("`{addr}` resolved to no addresses"),
                );
                let mut connected = None;
                for sockaddr in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sockaddr, t) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = e,
                    }
                }
                connected.ok_or(last)?
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads the matching reply.
    ///
    /// # Errors
    ///
    /// I/O errors, a connection closed before the reply, or an
    /// unparsable envelope.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        let frame = self.request_raw(&req.to_json().dump())?;
        Reply::parse(&frame).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// Sends a raw request frame and returns the raw reply frame.
    ///
    /// # Errors
    ///
    /// I/O errors, or a connection closed before the reply arrived.
    pub fn request_raw(&mut self, body: &str) -> io::Result<String> {
        write_frame(&mut self.stream, body)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })
    }
}
