//! `dvs-serve` — compilation as a service for the DVS pass.
//!
//! The MILP solve at the heart of the compile-time DVS pass costs tens to
//! hundreds of milliseconds per `(benchmark, deadline, ladder, regulator)`
//! request, yet its output is a pure function of those inputs. This crate
//! turns that purity into a long-running daemon:
//!
//! * **Protocol** ([`protocol`]) — a length-prefixed JSON frame protocol
//!   over TCP: `ping`, `stats`, `shutdown`, and `compile`/`verify` solve
//!   requests.
//! * **Content-addressed cache** ([`cache`]) — requests are canonically
//!   serialized (resolved benchmark name + deadline index + the
//!   compiler's semantic config digest) and FNV-1a-hashed; a hit returns
//!   the stored [`dvs_compiler::CompileResult`] JSON byte-identically,
//!   without touching the MILP. LRU eviction under a byte budget.
//! * **Batching and coalescing** ([`server`]) — concurrent identical
//!   requests collapse onto one in-flight solve; distinct requests are
//!   batched and fanned out over a [`dvs_runtime::Pool`].
//! * **Admission control** — a bounded pending queue sheds overload with
//!   an explicit `busy` reply, per-request deadlines abandon waits (the
//!   solve still completes and populates the cache), and a `shutdown`
//!   request drains the daemon gracefully.
//! * **Request tracing** ([`trace`]) — every completed solve reply
//!   carries a per-request trace tree (queue wait, cache lookup,
//!   coalesce join, solve, emit spans) in its **envelope** — never the
//!   cached body — and the `traces` op replays the last 64 trees as
//!   Chrome trace events.
//! * **Clients** ([`client`], [`loadtest`]) — a blocking request/reply
//!   client and a multi-connection load generator whose request mix is a
//!   pure function of the global request index, making results
//!   comparable across client counts.
//!
//! Everything is observable through `dvs-obs`: `serve.cache.*` counters,
//! the `serve.batch.size` histogram, the `runtime.pool.queued` gauge, and
//! load-test latencies under the registered `serve.loadtest` domain.
//!
//! ```no_run
//! use dvs_serve::{Client, Request, ServeConfig, Server};
//!
//! let server = Server::bind(&ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let handle = std::thread::spawn(move || server.run());
//! let mut client = Client::connect(&addr, None).unwrap();
//! let pong = client.request(&Request::Ping).unwrap();
//! assert!(pong.ok);
//! client.request(&Request::Shutdown).unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod loadtest;
pub mod protocol;
pub mod server;
pub mod trace;

pub use cache::{CacheStats, SolveCache};
pub use client::{Client, Reply};
pub use loadtest::{run_loadtest, LatencyStats, LoadtestConfig, LoadtestReport};
pub use protocol::{Request, SolveOp, SolveRequest};
pub use server::{ServeConfig, ServeSummary, Server};
pub use trace::{TraceCtx, TraceSpan};
