//! A multi-client load generator for the daemon.
//!
//! `clients` threads share `requests` total requests: client `c` issues
//! global request indices `c, c + clients, c + 2·clients, …`, each over
//! its own connection. The request mix is a deterministic function of
//! the **global** index alone, so runs with different client counts issue
//! the exact same multiset of requests and the per-index result digests
//! are directly comparable — that is how the test suite proves the
//! daemon's answers are independent of concurrency.

use crate::client::Client;
use crate::protocol::{Request, SolveOp, SolveRequest};
use crate::trace::span_dur_us;
use dvs_obs::json::Json;
use dvs_workloads::Benchmark;
use std::io;
use std::time::{Duration, Instant};

/// Configuration for [`run_loadtest`].
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Daemon address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Fix every request to this benchmark; `None` rotates through all
    /// six.
    pub benchmark: Option<String>,
    /// Voltage-ladder levels for every request.
    pub levels: usize,
    /// Regulator capacitance for every request.
    pub capacitance_uf: f64,
    /// Per-request server-side deadline, if any.
    pub timeout_ms: Option<u64>,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            addr: "127.0.0.1:7411".to_string(),
            clients: 4,
            requests: 100,
            benchmark: None,
            levels: 3,
            capacitance_uf: 0.05,
            timeout_ms: None,
        }
    }
}

/// Latency percentiles over completed requests, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Median round-trip.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Slowest request.
    pub max_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

/// Everything one load test measured.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Requests that returned an `ok` solve reply.
    pub completed: usize,
    /// Requests shed with `busy`.
    pub shed: usize,
    /// Requests that failed any other way (I/O, timeout, solve error).
    pub errors: usize,
    /// Wall-clock for the whole run in seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Round-trip latency percentiles (completed requests only).
    pub latency: LatencyStats,
    /// Server-side cache-hit rate over the run: `(hits + coalesced) /
    /// (hits + coalesced + solves)`, from the daemon's own counters.
    pub cache_hit_rate: f64,
    /// Per-global-index FNV-1a digest of the re-serialized `result`
    /// payload (`None` for failed requests). Concurrency-independent.
    pub digests: Vec<Option<u64>>,
    /// Per-global-index flag: served from cache?
    pub cached: Vec<bool>,
    /// Mean `queue-wait` span duration over completed requests whose
    /// reply trace carried one (cold solves only — hits and coalesced
    /// joins never queue), from the server's own per-request traces.
    pub mean_queue_wait_us: f64,
    /// Mean `cache-lookup` span duration over completed requests, from
    /// the server's per-request traces.
    pub mean_cache_lookup_us: f64,
}

/// The deterministic request mix: global index `i` maps to benchmark
/// `all()[i mod 6]` (unless pinned) and deadline index `2 + (i/6) mod 2`,
/// giving 12 distinct requests over the default mix — enough repetition
/// that a warm run is dominated by cache hits.
#[must_use]
pub fn mix_request(config: &LoadtestConfig, index: usize) -> SolveRequest {
    let benchmark = config.benchmark.clone().unwrap_or_else(|| {
        Benchmark::all()[index % Benchmark::all().len()]
            .name()
            .to_string()
    });
    SolveRequest {
        op: SolveOp::Compile,
        benchmark,
        deadline_index: 2 + (index / Benchmark::all().len()) % 2,
        levels: config.levels,
        capacitance_uf: config.capacitance_uf,
        solver: "auto".into(),
        timeout_ms: config.timeout_ms,
        trace_id: None,
    }
}

struct Sample {
    latency_us: f64,
    outcome: Outcome,
}

enum Outcome {
    Ok {
        digest: u64,
        cached: bool,
        queue_wait_us: Option<f64>,
        cache_lookup_us: Option<f64>,
    },
    Shed,
    Error,
}

/// Pulls `(hits, coalesced, solves)` out of a `stats` reply body.
fn counters_of(stats: &Json) -> (u64, u64, u64) {
    let get = |path: &[&str]| {
        let mut v = stats;
        for k in path {
            match v.get(k) {
                Some(next) => v = next,
                None => return 0,
            }
        }
        v.as_u64().unwrap_or(0)
    };
    (
        get(&["cache", "hits"]),
        get(&["counters", "coalesced"]),
        get(&["counters", "solves"]),
    )
}

fn fetch_counters(addr: &str) -> io::Result<(u64, u64, u64)> {
    let mut c = Client::connect(addr, Some(Duration::from_secs(10)))?;
    let reply = c.request(&Request::Stats)?;
    let result = reply
        .result
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "stats reply has no result"))?;
    Ok(counters_of(&result))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let idx = (((sorted.len() - 1) as f64) * q).round() as usize;
    sorted[idx]
}

/// Runs the load test and records the latency distribution into dvs-obs
/// (histogram `serve.loadtest.latency_us` under the `serve.loadtest`
/// domain, so serve metrics never alias bench metrics in shared CSVs).
///
/// # Errors
///
/// I/O errors reaching the daemon for the before/after stats probes, or
/// if *every* request fails (a flat failure is reported as an error
/// rather than a report full of `None`s).
#[allow(clippy::cast_precision_loss)]
pub fn run_loadtest(config: &LoadtestConfig) -> io::Result<LoadtestReport> {
    let clients = config.clients.max(1);
    let total = config.requests;
    let before = fetch_counters(&config.addr)?;
    let started = Instant::now();

    let mut samples: Vec<Option<Sample>> = (0..total).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    // One connection per client; once it breaks, this
                    // client's remaining requests fail fast as errors.
                    let mut conn = Client::connect(&config.addr, None).ok();
                    let mut out = Vec::new();
                    let mut i = c;
                    while i < total {
                        let req = Request::Solve(mix_request(config, i));
                        let t0 = Instant::now();
                        let outcome = match conn.as_mut().map(|cl| cl.request(&req)) {
                            Some(Ok(reply)) if reply.ok => {
                                let body =
                                    reply.result.as_ref().map(Json::dump).unwrap_or_default();
                                let mut h = dvs_compiler::fingerprint::Fnv64::new();
                                h.write_str(&body);
                                let tr = reply.trace.as_ref();
                                Outcome::Ok {
                                    digest: h.finish(),
                                    cached: reply.cached,
                                    queue_wait_us: tr.and_then(|t| span_dur_us(t, "queue-wait")),
                                    cache_lookup_us: tr
                                        .and_then(|t| span_dur_us(t, "cache-lookup")),
                                }
                            }
                            Some(Ok(reply)) if reply.kind.as_deref() == Some("busy") => {
                                Outcome::Shed
                            }
                            Some(Ok(_)) => Outcome::Error,
                            Some(Err(_)) | None => {
                                conn = None;
                                Outcome::Error
                            }
                        };
                        out.push((
                            i,
                            Sample {
                                latency_us: t0.elapsed().as_secs_f64() * 1e6,
                                outcome,
                            },
                        ));
                        i += clients;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, sample) in h.join().expect("client thread panicked") {
                samples[i] = Some(sample);
            }
        }
    });

    let wall_s = started.elapsed().as_secs_f64();
    let after = fetch_counters(&config.addr)?;

    let mut digests = Vec::with_capacity(total);
    let mut cached = Vec::with_capacity(total);
    let mut latencies = Vec::new();
    let mut queue_waits = Vec::new();
    let mut cache_lookups = Vec::new();
    let (mut completed, mut shed, mut errors) = (0usize, 0usize, 0usize);
    for sample in samples {
        let sample = sample.expect("every index was visited by exactly one client");
        match sample.outcome {
            Outcome::Ok {
                digest,
                cached: c,
                queue_wait_us,
                cache_lookup_us,
            } => {
                completed += 1;
                digests.push(Some(digest));
                cached.push(c);
                latencies.push(sample.latency_us);
                queue_waits.extend(queue_wait_us);
                cache_lookups.extend(cache_lookup_us);
            }
            Outcome::Shed => {
                shed += 1;
                digests.push(None);
                cached.push(false);
            }
            Outcome::Error => {
                errors += 1;
                digests.push(None);
                cached.push(false);
            }
        }
    }
    if completed == 0 && total > 0 {
        return Err(io::Error::other("every load-test request failed"));
    }

    // Record under the dedicated domain so these metrics stay separable
    // from bench-harness metrics in shared exports.
    if dvs_obs::enabled() {
        let domain = dvs_obs::register_domain("serve.loadtest");
        let _d = dvs_obs::enter_domain(domain);
        for &l in &latencies {
            dvs_obs::histogram("serve.loadtest.latency_us", l);
        }
        for &w in &queue_waits {
            dvs_obs::histogram("serve.loadtest.queue_wait_us", w);
        }
        for &l in &cache_lookups {
            dvs_obs::histogram("serve.loadtest.cache_lookup_us", l);
        }
        dvs_obs::counter("serve.loadtest.completed", completed as u64);
        dvs_obs::counter("serve.loadtest.shed", shed as u64);
        dvs_obs::counter("serve.loadtest.errors", errors as u64);
        dvs_obs::gauge(
            "serve.loadtest.throughput_rps",
            completed as f64 / wall_s.max(1e-9),
        );
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let latency = LatencyStats {
        p50_us: percentile(&latencies, 0.50),
        p90_us: percentile(&latencies, 0.90),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0.0),
        mean_us: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
    };
    let (d_hits, d_coal, d_solves) = (
        after.0.saturating_sub(before.0),
        after.1.saturating_sub(before.1),
        after.2.saturating_sub(before.2),
    );
    let served = d_hits + d_coal + d_solves;
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    Ok(LoadtestReport {
        completed,
        shed,
        errors,
        wall_s,
        throughput_rps: completed as f64 / wall_s.max(1e-9),
        latency,
        cache_hit_rate: if served == 0 {
            0.0
        } else {
            (d_hits + d_coal) as f64 / served as f64
        },
        digests,
        cached,
        mean_queue_wait_us: mean(&queue_waits),
        mean_cache_lookup_us: mean(&cache_lookups),
    })
}
