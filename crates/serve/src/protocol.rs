//! The wire protocol: length-prefixed JSON frames and the request type.
//!
//! A frame is a 4-byte **big-endian** payload length followed by that many
//! bytes of UTF-8 JSON. Both directions use the same framing; a connection
//! carries any number of request/response frame pairs, in order. The
//! length prefix is capped at [`MAX_FRAME_BYTES`] so a corrupt or
//! malicious header cannot make the peer allocate unbounded memory.

use dvs_obs::json::Json;
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (16 MiB — the largest cached compile
/// result for the bundled workloads is a few KiB, so this is generous).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES} limit",
                bytes.len()
            ),
        ));
    }
    let len = u32::try_from(bytes.len()).expect("checked against MAX_FRAME_BYTES");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF **at a frame
/// boundary** (the peer closed between requests); EOF mid-frame is an
/// error.
///
/// # Errors
///
/// Propagates I/O errors (including read timeouts as
/// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`] when the
/// stream has a read timeout and **no** header byte has arrived yet);
/// rejects oversized or non-UTF-8 payloads.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    // First header byte: a clean EOF here is a graceful close.
    let mut got = 0usize;
    while got == 0 {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => got = n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    read_exact_patient(r, &mut header[1..])?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header announces {len} bytes (limit {MAX_FRAME_BYTES})"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_exact_patient(r, &mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

/// How long a partially received frame may stall before the read is
/// abandoned. Mid-frame timeouts are otherwise ridden out (abandoning a
/// half-read frame would desynchronize the stream), but a peer that
/// sends half a frame and goes silent must not pin the reader forever.
const MID_FRAME_STALL_LIMIT: std::time::Duration = std::time::Duration::from_secs(30);

/// `read_exact` that rides out read-timeout and interrupt errors — once a
/// frame has started arriving we must not abandon it halfway — up to
/// [`MID_FRAME_STALL_LIMIT`] of continuous stall.
fn read_exact_patient(r: &mut impl Read, mut buf: &mut [u8]) -> io::Result<()> {
    let mut stalled_since: Option<std::time::Instant> = None;
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => {
                buf = &mut buf[n..];
                stalled_since = None;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let since = *stalled_since.get_or_insert_with(std::time::Instant::now);
                if since.elapsed() > MID_FRAME_STALL_LIMIT {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Which pipeline a solve request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOp {
    /// Full compile: profile → filter → MILP → schedule → simulator
    /// validation, returning the canonical `CompileResult` JSON.
    Compile,
    /// Compile (validation off) plus the `dvs-verify` static pass,
    /// returning the verify report.
    Verify,
    /// Compile (validation off) plus a `dvs-replay` bytecode evaluation
    /// of the emitted schedule, returning measured time/energy and the
    /// bytecode shape. The compiled bytecode is itself content-addressed
    /// and shared across requests that differ only in deadline or solver.
    Evaluate,
    /// Compile (validation off) with the certified-optimality gate: the
    /// solver's proof is exported as a `dvs-cert` certificate, replayed by
    /// the independent exact-arithmetic checker, and returned (encoded
    /// certificate + checker report) alongside the compile result. The
    /// certificate is byte-stable and rides in the content-addressed
    /// cache like any other result body.
    Certify,
}

impl SolveOp {
    /// The wire name of the op.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SolveOp::Compile => "compile",
            SolveOp::Verify => "verify",
            SolveOp::Evaluate => "evaluate",
            SolveOp::Certify => "certify",
        }
    }
}

/// A cacheable unit of work: everything that determines the solve output,
/// plus a per-request timeout that deliberately does **not** participate
/// in the cache key.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Compile or verify.
    pub op: SolveOp,
    /// Benchmark name (exact or unambiguous prefix, as `dvsc` accepts).
    pub benchmark: String,
    /// Fig. 16 deadline index, 1..=5.
    pub deadline_index: usize,
    /// Voltage-ladder levels (3 = the paper's XScale ladder).
    pub levels: usize,
    /// Regulator capacitance in µF.
    pub capacitance_uf: f64,
    /// Solver backend: `auto` (default), `bnb`/`branch-and-bound`, or
    /// `continuous` — part of the cache key, since the backend can change
    /// the reported schedule and statistics.
    pub solver: String,
    /// How long the *client* is willing to wait, in milliseconds. The
    /// server stops waiting (and replies `timeout`) after this; the solve
    /// itself keeps running and still populates the cache.
    pub timeout_ms: Option<u64>,
    /// Client-chosen trace id echoed in the reply's trace tree; the
    /// server assigns one when absent. Like `timeout_ms`, never part of
    /// the cache key.
    pub trace_id: Option<u64>,
}

impl SolveRequest {
    /// Parses the solve fields out of a request object.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(op: SolveOp, v: &Json) -> Result<SolveRequest, String> {
        let benchmark = v
            .get("benchmark")
            .and_then(Json::as_str)
            .ok_or("missing string field `benchmark`")?
            .to_string();
        let deadline_index = v
            .get("deadline_index")
            .map(|d| d.as_u64().ok_or("`deadline_index` must be an integer"))
            .transpose()?
            .unwrap_or(3) as usize;
        let levels = v
            .get("levels")
            .map(|d| d.as_u64().ok_or("`levels` must be an integer"))
            .transpose()?
            .unwrap_or(3) as usize;
        let capacitance_uf = v
            .get("capacitance_uf")
            .map(|d| d.as_f64().ok_or("`capacitance_uf` must be a number"))
            .transpose()?
            .unwrap_or(0.05);
        let solver = v
            .get("solver")
            .map(|d| d.as_str().ok_or("`solver` must be a string"))
            .transpose()?
            .unwrap_or("auto")
            .to_string();
        if dvs_compiler::SolverChoice::parse(&solver).is_none() {
            return Err(format!(
                "`solver` must be auto, bnb, branch-and-bound or continuous (got `{solver}`)"
            ));
        }
        let timeout_ms = v
            .get("timeout_ms")
            .map(|d| d.as_u64().ok_or("`timeout_ms` must be an integer"))
            .transpose()?;
        let trace_id = v
            .get("trace_id")
            .map(|d| d.as_u64().ok_or("`trace_id` must be an integer"))
            .transpose()?;
        Ok(SolveRequest {
            op,
            benchmark,
            deadline_index,
            levels,
            capacitance_uf,
            solver,
            timeout_ms,
            trace_id,
        })
    }

    /// The request as a wire JSON object (includes `timeout_ms`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("op".to_string(), Json::from(self.op.name())),
            ("benchmark".to_string(), Json::from(self.benchmark.as_str())),
            (
                "deadline_index".to_string(),
                Json::from(self.deadline_index),
            ),
            ("levels".to_string(), Json::from(self.levels)),
            (
                "capacitance_uf".to_string(),
                Json::from(self.capacitance_uf),
            ),
            ("solver".to_string(), Json::from(self.solver.as_str())),
        ];
        if let Some(t) = self.timeout_ms {
            members.push(("timeout_ms".to_string(), Json::from(t)));
        }
        if let Some(t) = self.trace_id {
            members.push(("trace_id".to_string(), Json::from(t)));
        }
        Json::Obj(members)
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Cache/queue/counter snapshot.
    Stats,
    /// Graceful drain: finish queued work, then stop the server.
    Shutdown,
    /// The last completed request trace trees, as Chrome trace events.
    Traces,
    /// A compile, verify, evaluate or certify solve.
    Solve(SolveRequest),
}

impl Request {
    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// A message describing the malformed frame (sent back as a
    /// `bad_request` response).
    pub fn parse(body: &str) -> Result<Request, String> {
        let v = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "traces" => Ok(Request::Traces),
            "compile" => Ok(Request::Solve(SolveRequest::from_json(
                SolveOp::Compile,
                &v,
            )?)),
            "verify" => Ok(Request::Solve(SolveRequest::from_json(
                SolveOp::Verify,
                &v,
            )?)),
            "evaluate" => Ok(Request::Solve(SolveRequest::from_json(
                SolveOp::Evaluate,
                &v,
            )?)),
            "certify" => Ok(Request::Solve(SolveRequest::from_json(
                SolveOp::Certify,
                &v,
            )?)),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// The wire JSON for this request.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj([("op", "ping")]),
            Request::Stats => Json::obj([("op", "stats")]),
            Request::Shutdown => Json::obj([("op", "shutdown")]),
            Request::Traces => Json::obj([("op", "traces")]),
            Request::Solve(s) => s.to_json(),
        }
    }
}

/// Builds an error response envelope. `kind` is machine-readable
/// (`busy`, `timeout`, `bad_request`, `solve_error`, `shutting_down`).
#[must_use]
pub fn error_envelope(op: &str, kind: &str, msg: &str) -> String {
    Json::obj([
        ("ok", Json::from(false)),
        ("op", Json::from(op)),
        ("kind", Json::from(kind)),
        ("error", Json::from(msg)),
    ])
    .dump()
}

/// Builds a success envelope around an already-serialized `result` body.
///
/// The body is spliced in verbatim, so a cached result is returned
/// byte-identical to the response that first produced it; only the
/// envelope fields (`cached`, `server_us`) differ between cold and warm.
#[must_use]
pub fn ok_envelope(op: &str, cached: bool, server_us: f64, result_body: &str) -> String {
    ok_envelope_traced(op, cached, server_us, result_body, None)
}

/// [`ok_envelope`] with an optional `trace` field carrying the request's
/// finished trace tree (an already-serialized JSON object). The trace
/// rides in the **envelope**, never the result body, so the byte-identity
/// contract between cold and warm results is untouched.
#[must_use]
pub fn ok_envelope_traced(
    op: &str,
    cached: bool,
    server_us: f64,
    result_body: &str,
    trace_body: Option<&str>,
) -> String {
    let trace = trace_body.map_or(String::new(), |t| format!("\"trace\":{t},"));
    format!(
        "{{\"ok\":true,\"op\":\"{op}\",\"cached\":{cached},\"server_us\":{},{trace}\"result\":{result_body}}}",
        Json::from(server_us).dump()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, "{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"op\":\"ping\"}")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second"));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        buf.truncate(6); // header + one byte
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_header_is_rejected_without_allocating() {
        let mut buf = (u32::try_from(MAX_FRAME_BYTES).unwrap() + 1)
            .to_be_bytes()
            .to_vec();
        buf.extend_from_slice(b"x");
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn requests_parse_and_round_trip() {
        for (body, want) in [
            ("{\"op\":\"ping\"}", Request::Ping),
            ("{\"op\":\"stats\"}", Request::Stats),
            ("{\"op\":\"shutdown\"}", Request::Shutdown),
            ("{\"op\":\"traces\"}", Request::Traces),
        ] {
            assert_eq!(Request::parse(body).unwrap(), want);
        }
        let req = Request::Solve(SolveRequest {
            op: SolveOp::Compile,
            benchmark: "gsm".into(),
            deadline_index: 2,
            levels: 3,
            capacitance_uf: 0.05,
            solver: "bnb".into(),
            timeout_ms: Some(500),
            trace_id: Some(99),
        });
        let round = Request::parse(&req.to_json().dump()).unwrap();
        assert_eq!(round, req);
        // Defaults fill in when optional fields are absent.
        let sparse = Request::parse("{\"op\":\"verify\",\"benchmark\":\"epic\"}").unwrap();
        match sparse {
            Request::Solve(s) => {
                assert_eq!(s.op, SolveOp::Verify);
                assert_eq!((s.deadline_index, s.levels), (3, 3));
                assert_eq!(s.solver, "auto");
                assert!(s.timeout_ms.is_none());
                assert!(s.trace_id.is_none());
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn evaluate_requests_parse_and_round_trip() {
        let req = Request::Solve(SolveRequest {
            op: SolveOp::Evaluate,
            benchmark: "adpcm".into(),
            deadline_index: 4,
            levels: 5,
            capacitance_uf: 0.1,
            solver: "auto".into(),
            timeout_ms: None,
            trace_id: None,
        });
        assert_eq!(Request::parse(&req.to_json().dump()).unwrap(), req);
        match Request::parse("{\"op\":\"evaluate\",\"benchmark\":\"gsm\"}").unwrap() {
            Request::Solve(s) => assert_eq!(s.op, SolveOp::Evaluate),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn certify_requests_parse_and_round_trip() {
        let req = Request::Solve(SolveRequest {
            op: SolveOp::Certify,
            benchmark: "gsm".into(),
            deadline_index: 2,
            levels: 3,
            capacitance_uf: 0.05,
            solver: "bnb".into(),
            timeout_ms: None,
            trace_id: None,
        });
        assert_eq!(Request::parse(&req.to_json().dump()).unwrap(), req);
        match Request::parse("{\"op\":\"certify\",\"benchmark\":\"epic\"}").unwrap() {
            Request::Solve(s) => {
                assert_eq!(s.op, SolveOp::Certify);
                assert_eq!(s.op.name(), "certify");
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        assert!(Request::parse("nonsense")
            .unwrap_err()
            .contains("invalid JSON"));
        assert!(Request::parse("{}").unwrap_err().contains("`op`"));
        assert!(Request::parse("{\"op\":\"dance\"}")
            .unwrap_err()
            .contains("unknown op"));
        assert!(Request::parse("{\"op\":\"compile\"}")
            .unwrap_err()
            .contains("`benchmark`"));
    }

    #[test]
    fn envelopes_are_valid_json() {
        let e = error_envelope("compile", "busy", "queue full");
        let v = Json::parse(&e).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("busy"));
        let o = ok_envelope("compile", true, 12.5, "{\"x\":1}");
        let v = Json::parse(&o).unwrap();
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true));
        assert!(v.get("trace").is_none());
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("x"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // The trace variant splices both bodies verbatim: the result
        // bytes are identical with and without a trace attached.
        let t = ok_envelope_traced("compile", true, 12.5, "{\"x\":1}", Some("{\"trace_id\":3}"));
        let v = Json::parse(&t).unwrap();
        assert_eq!(
            v.get("trace")
                .and_then(|tr| tr.get("trace_id"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("result").map(Json::dump),
            Json::parse(&o).unwrap().get("result").map(Json::dump)
        );
    }
}
