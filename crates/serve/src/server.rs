//! The daemon: accept loop, admission control, batching dispatcher and
//! the solve executor.
//!
//! One OS thread per connection reads request frames; solve requests pass
//! through a three-stage admission path under a single coordination lock:
//!
//! 1. **Cache** — a content-addressed hit answers immediately with the
//!    stored body.
//! 2. **Coalesce** — a request identical to one already in flight joins
//!    its waiter set instead of enqueueing a second solve.
//! 3. **Admit or shed** — a genuinely new request enters the bounded
//!    pending queue, unless the queue is at `queue_depth`, in which case
//!    the server replies `busy` instead of building unbounded backlog.
//!
//! A single dispatcher thread drains the pending queue in batches and
//! fans each batch out over a [`dvs_runtime::Pool`], so distinct requests
//! solve in parallel while every waiter of a coalesced request is paid by
//! one solve. Shutdown (the `shutdown` request) stops admission, drains
//! the queue and in-flight solves, then stops the accept loop.

use crate::cache::{CacheStats, SolveCache};
use crate::protocol::{
    error_envelope, ok_envelope, ok_envelope_traced, read_frame, write_frame, Request, SolveOp,
    SolveRequest,
};
use crate::trace::{self, TraceCtx, ROOT_SPAN};
use dvs_compiler::{DeadlineScheme, DvsCompiler};
use dvs_obs::json::Json;
use dvs_sim::Machine;
use dvs_vf::{AlphaPower, TransitionModel, VoltageLadder};
use dvs_workloads::Benchmark;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a blocked connection read waits before re-checking the
/// shutdown flag, and how long the accept loop sleeps when idle.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7411` (port `0` picks a free one).
    pub addr: String,
    /// Worker threads for the solve pool (and the batch width).
    pub jobs: usize,
    /// Byte budget for the solve cache.
    pub cache_bytes: usize,
    /// Maximum pending (admitted but not yet dispatched) solves before
    /// new work is shed with `busy`.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7411".to_string(),
            jobs: 1,
            cache_bytes: 64 << 20,
            queue_depth: 64,
        }
    }
}

/// How many completed request traces the daemon retains for the
/// `traces` op.
const TRACE_RING: usize = 64;

/// One admitted solve waiting for (or being) executed.
struct Job {
    key: u64,
    canonical: String,
    request: SolveRequest,
    /// When the job entered the pending queue — the dispatcher derives
    /// the `queue-wait` span from this.
    enqueued: Instant,
}

/// What one executed solve produced: the result body plus the timings
/// the worker side measured, which the connection thread turns into
/// `queue-wait` and `solve` trace spans (plus a `cert-check` span for
/// certify solves).
#[derive(Clone)]
struct SolveOutcome {
    body: Result<String, String>,
    queue_wait_us: f64,
    solve_us: f64,
    /// Wall time of the independent certificate check, when the solve
    /// was a [`SolveOp::Certify`].
    cert_check_us: Option<f64>,
}

/// The rendezvous between one in-flight solve and its waiters. The slot
/// stays filled after completion so late joiners (admitted before the
/// coordination lock observed the removal) still read the result.
struct Inflight {
    slot: Mutex<Option<SolveOutcome>>,
    done: Condvar,
}

/// Everything the admission path mutates, under one lock so a lookup,
/// a coalesce check and an enqueue are a single atomic decision.
struct Coord {
    cache: SolveCache,
    inflight: HashMap<u64, Arc<Inflight>>,
    queue: VecDeque<Job>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    solves: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
}

struct State {
    coord: Mutex<Coord>,
    work_ready: Condvar,
    queue_depth: usize,
    jobs: usize,
    shutdown: AtomicBool,
    counters: Counters,
    pool: dvs_runtime::Pool,
    domain: u32,
    started: Instant,
    /// Last [`TRACE_RING`] completed solve trace trees, oldest first.
    traces: Mutex<VecDeque<Json>>,
    /// Server-assigned trace ids for requests that did not bring one.
    next_trace: AtomicU64,
}

/// Counter totals reported by [`Server::run`] after shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeSummary {
    /// Frames handled (all ops).
    pub requests: u64,
    /// Solves actually executed.
    pub solves: u64,
    /// Requests that joined an in-flight solve.
    pub coalesced: u64,
    /// Requests shed with `busy`.
    pub shed: u64,
    /// Waits abandoned at the client's deadline.
    pub timeouts: u64,
    /// Cache counters at shutdown.
    pub cache: CacheStats,
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: State,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("jobs", &self.state.jobs)
            .field("queue_depth", &self.state.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listen socket and prepares the shared state (the solve
    /// pool, the cache, the `serve.worker` dvs-obs domain).
    ///
    /// # Errors
    ///
    /// I/O errors from binding `config.addr`.
    pub fn bind(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let jobs = config.jobs.max(1);
        Ok(Server {
            listener,
            state: State {
                coord: Mutex::new(Coord {
                    cache: SolveCache::new(config.cache_bytes),
                    inflight: HashMap::new(),
                    queue: VecDeque::new(),
                }),
                work_ready: Condvar::new(),
                queue_depth: config.queue_depth,
                jobs,
                shutdown: AtomicBool::new(false),
                counters: Counters::default(),
                pool: dvs_runtime::Pool::new(jobs),
                domain: dvs_obs::register_domain("serve.worker"),
                started: Instant::now(),
                traces: Mutex::new(VecDeque::with_capacity(TRACE_RING)),
                next_trace: AtomicU64::new(1),
            },
        })
    }

    /// The bound address — useful after binding port 0.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request drains the daemon. Blocks the
    /// calling thread; connection handlers and the dispatcher run on
    /// scoped threads that are joined before this returns.
    ///
    /// # Errors
    ///
    /// I/O errors from the listener itself (per-connection errors only
    /// terminate that connection).
    pub fn run(self) -> io::Result<ServeSummary> {
        self.listener.set_nonblocking(true)?;
        let state = &self.state;
        std::thread::scope(|s| -> io::Result<()> {
            s.spawn(|| dispatcher(state));
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        s.spawn(move || handle_connection(state, stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            // Wake the dispatcher so it can observe shutdown and exit.
            state.work_ready.notify_all();
            Ok(())
        })?;
        let cache = state.coord.lock().expect("coord poisoned").cache.stats();
        let c = &state.counters;
        Ok(ServeSummary {
            requests: c.requests.load(Ordering::Relaxed),
            solves: c.solves.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            cache,
        })
    }
}

/// Reads frames off one connection until the peer closes, an I/O error
/// occurs, or shutdown completes. Solve handling may block (queue wait);
/// the read timeout only spins while the connection is idle between
/// frames.
fn handle_connection(state: &State, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let shutting_down_ack = matches!(Request::parse(&frame), Ok(Request::Shutdown));
        let reply = handle_request(state, &frame);
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
        if shutting_down_ack {
            return;
        }
    }
}

/// Dispatches one request frame to a reply body.
fn handle_request(state: &State, frame: &str) -> String {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    match Request::parse(frame) {
        Ok(Request::Ping) => ok_envelope("ping", false, us_since(started), "\"pong\""),
        Ok(Request::Stats) => {
            let body = stats_json(state).dump();
            ok_envelope("stats", false, us_since(started), &body)
        }
        Ok(Request::Shutdown) => handle_shutdown(state, started),
        Ok(Request::Traces) => {
            let body = traces_json(state).dump();
            ok_envelope("traces", false, us_since(started), &body)
        }
        Ok(Request::Solve(req)) => handle_solve(state, &req, started),
        Err(msg) => {
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            error_envelope("request", "bad_request", &msg)
        }
    }
}

fn us_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e6
}

/// How one solve request cleared admission; each variant leaves a
/// different shape behind in the request's trace tree.
enum Admission {
    /// Content-addressed cache hit: the stored body, answered in place.
    Hit(String),
    /// Joined an identical in-flight solve.
    Join(Arc<Inflight>),
    /// Admitted to the pending queue as a fresh solve.
    Fresh(Arc<Inflight>),
}

/// The admission path described in the module docs: cache → coalesce →
/// admit/shed, then wait for the solve (bounded by the request's own
/// deadline when it has one). Every completed solve records a trace
/// tree — queue wait, cache lookup, coalesce join, solve, emit — that
/// rides the reply envelope and lands in the `traces` ring.
fn handle_solve(state: &State, req: &SolveRequest, started: Instant) -> String {
    let op = req.op.name();
    let (key, canonical) = match request_key(req) {
        Ok(kc) => kc,
        Err(msg) => {
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            return error_envelope(op, "bad_request", &msg);
        }
    };
    let trace_id = req
        .trace_id
        .unwrap_or_else(|| state.next_trace.fetch_add(1, Ordering::Relaxed));
    let mut tr = TraceCtx::new(trace_id, started);
    let lookup = tr.begin(ROOT_SPAN, "cache-lookup");
    let admission = {
        let mut coord = state.coord.lock().expect("coord poisoned");
        // Checked under the coordination lock: `handle_shutdown` sets the
        // flag while holding it, so no job can slip into the queue after
        // the dispatcher has observed shutdown and exited.
        if state.shutdown.load(Ordering::SeqCst) {
            return error_envelope(op, "shutting_down", "server is draining");
        }
        if let Some(body) = coord.cache.get(key, &canonical) {
            Admission::Hit(body)
        } else if let Some(inf) = coord.inflight.get(&key) {
            state.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            if dvs_obs::enabled() {
                dvs_obs::counter("serve.coalesced", 1);
            }
            Admission::Join(Arc::clone(inf))
        } else {
            if coord.queue.len() >= state.queue_depth {
                state.counters.shed.fetch_add(1, Ordering::Relaxed);
                if dvs_obs::enabled() {
                    dvs_obs::counter("serve.shed", 1);
                }
                return error_envelope(
                    op,
                    "busy",
                    &format!("pending queue full ({} solves waiting)", coord.queue.len()),
                );
            }
            let inf = Arc::new(Inflight {
                slot: Mutex::new(None),
                done: Condvar::new(),
            });
            coord.inflight.insert(key, Arc::clone(&inf));
            coord.queue.push_back(Job {
                key,
                canonical,
                request: req.clone(),
                enqueued: Instant::now(),
            });
            state.counters.solves.fetch_add(1, Ordering::Relaxed);
            drop(coord);
            state.work_ready.notify_all();
            Admission::Fresh(inf)
        }
    };
    tr.end(lookup);
    if dvs_obs::enabled() {
        dvs_obs::histogram("serve.cache_lookup_us", tr.now_us());
    }
    let timeout = req.timeout_ms.map(Duration::from_millis);
    let (inflight, join_span) = match admission {
        Admission::Hit(body) => {
            let hit = tr.begin(ROOT_SPAN, "cache-hit");
            tr.end(hit);
            return finish_traced(state, tr, op, true, started, &body);
        }
        Admission::Join(inf) => {
            let join = tr.begin(ROOT_SPAN, "coalesce-join");
            (inf, Some(join))
        }
        Admission::Fresh(inf) => (inf, None),
    };
    match wait_inflight(&inflight, timeout) {
        Some(outcome) => {
            match join_span {
                // A coalesced waiter only observed the join; the solve
                // spans belong to the request that enqueued the job.
                Some(join) => tr.end(join),
                None => {
                    // Place the dispatcher-measured spans on the request
                    // timeline by working backwards from the wakeup.
                    let queue_start =
                        (tr.now_us() - outcome.solve_us - outcome.queue_wait_us).max(0.0);
                    tr.record(ROOT_SPAN, "queue-wait", queue_start, outcome.queue_wait_us);
                    tr.record(
                        ROOT_SPAN,
                        "solve",
                        queue_start + outcome.queue_wait_us,
                        outcome.solve_us,
                    );
                    // The independent certificate check runs at the tail of
                    // the solve; surface it as its own span so `dvsc client
                    // trace certify` shows where the verification time went.
                    if let Some(cert_us) = outcome.cert_check_us {
                        let solve_end = queue_start + outcome.queue_wait_us + outcome.solve_us;
                        tr.record(
                            ROOT_SPAN,
                            "cert-check",
                            (solve_end - cert_us).max(0.0),
                            cert_us,
                        );
                    }
                    if dvs_obs::enabled() {
                        dvs_obs::histogram("serve.queue_wait_us", outcome.queue_wait_us);
                    }
                }
            }
            match outcome.body {
                Ok(body) => finish_traced(state, tr, op, false, started, &body),
                Err(msg) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    error_envelope(op, "solve_error", &msg)
                }
            }
        }
        None => {
            state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            if dvs_obs::enabled() {
                dvs_obs::counter("serve.timeouts", 1);
            }
            error_envelope(
                op,
                "timeout",
                &format!(
                    "solve did not finish within {} ms (it keeps running and will populate the cache)",
                    req.timeout_ms.unwrap_or(0)
                ),
            )
        }
    }
}

/// Records the `emit` span, closes the trace, retains it in the ring and
/// wraps the result body in a traced success envelope.
fn finish_traced(
    state: &State,
    mut tr: TraceCtx,
    op: &str,
    cached: bool,
    started: Instant,
    body: &str,
) -> String {
    let emit = tr.begin(ROOT_SPAN, "emit");
    tr.end(emit);
    let tree = tr.finish();
    {
        let mut ring = state.traces.lock().expect("traces poisoned");
        while ring.len() >= TRACE_RING {
            ring.pop_front();
        }
        ring.push_back(tree.clone());
    }
    ok_envelope_traced(op, cached, us_since(started), body, Some(&tree.dump()))
}

/// The `traces` response body: the retained trace trees (oldest first)
/// plus a flattened Chrome-trace event array covering all of them, ready
/// to write to a file and load in Perfetto.
fn traces_json(state: &State) -> Json {
    let trees: Vec<Json> = state
        .traces
        .lock()
        .expect("traces poisoned")
        .iter()
        .cloned()
        .collect();
    let chrome: Vec<Json> = trees.iter().flat_map(trace::chrome_events).collect();
    Json::obj([
        ("count", Json::from(trees.len())),
        ("traces", Json::Arr(trees)),
        ("chrome", Json::Arr(chrome)),
    ])
}

/// Blocks until the in-flight solve completes, or until `timeout`
/// elapses (`None` result). Multiple waiters each clone the outcome.
fn wait_inflight(inf: &Inflight, timeout: Option<Duration>) -> Option<SolveOutcome> {
    let deadline = timeout.map(|t| Instant::now() + t);
    let mut slot = inf.slot.lock().expect("inflight poisoned");
    loop {
        if let Some(result) = slot.as_ref() {
            return Some(result.clone());
        }
        match deadline {
            None => slot = inf.done.wait(slot).expect("inflight poisoned"),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return None;
                }
                let (guard, _) = inf
                    .done
                    .wait_timeout(slot, d - now)
                    .expect("inflight poisoned");
                slot = guard;
            }
        }
    }
}

/// Sets the shutdown flag, waits for the pending queue and in-flight
/// solves to drain, and acknowledges with the final counters.
fn handle_shutdown(state: &State, started: Instant) -> String {
    {
        let _coord = state.coord.lock().expect("coord poisoned");
        state.shutdown.store(true, Ordering::SeqCst);
    }
    state.work_ready.notify_all();
    loop {
        let drained = {
            let coord = state.coord.lock().expect("coord poisoned");
            coord.queue.is_empty() && coord.inflight.is_empty()
        };
        if drained {
            break;
        }
        std::thread::sleep(POLL_INTERVAL);
    }
    let body = stats_json(state).dump();
    ok_envelope("shutdown", false, us_since(started), &body)
}

/// The dispatcher: drains the pending queue in batches and fans each
/// batch out over the pool, so distinct requests solve concurrently and
/// every batch member's waiters are released as the batch lands.
fn dispatcher(state: &State) {
    loop {
        let batch: Vec<Job> = {
            let mut coord = state.coord.lock().expect("coord poisoned");
            loop {
                if !coord.queue.is_empty() {
                    break coord.queue.drain(..).collect();
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                coord = state.work_ready.wait(coord).expect("coord poisoned");
            }
        };
        if dvs_obs::enabled() {
            dvs_obs::counter("serve.batches", 1);
            #[allow(clippy::cast_precision_loss)]
            dvs_obs::histogram("serve.batch.size", batch.len() as f64);
        }
        let domain = state.domain;
        let results = state.pool.map(batch, |_, job| {
            let _d = dvs_obs::enter_domain(domain);
            let queue_wait_us = us_since(job.enqueued);
            let solve_start = Instant::now();
            let (body, cert_check_us) = match execute_solve(&job.request) {
                Ok(s) => (Ok(s.body), s.cert_check_us),
                Err(e) => (Err(e), None),
            };
            let outcome = SolveOutcome {
                body,
                queue_wait_us,
                solve_us: us_since(solve_start),
                cert_check_us,
            };
            (job.key, job.canonical, outcome)
        });
        let mut finished = Vec::with_capacity(results.len());
        {
            let mut coord = state.coord.lock().expect("coord poisoned");
            for (key, canonical, outcome) in results {
                if let Ok(b) = &outcome.body {
                    coord.cache.insert(key, &canonical, b.clone());
                }
                if let Some(inf) = coord.inflight.remove(&key) {
                    finished.push((inf, outcome));
                }
            }
        }
        for (inf, outcome) in finished {
            *inf.slot.lock().expect("inflight poisoned") = Some(outcome);
            inf.done.notify_all();
        }
    }
}

/// Resolves a benchmark name the way `dvsc` does: exact match or prefix.
fn find_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name || b.name().starts_with(name))
}

fn ladder(levels: usize) -> Option<VoltageLadder> {
    let law = AlphaPower::paper();
    if levels == 3 {
        Some(VoltageLadder::xscale3(&law))
    } else {
        VoltageLadder::interpolated(&law, levels).ok()
    }
}

/// Builds the compiler a request describes. `Compile` validates on the
/// simulator; `Verify` skips validation (the static pass runs instead);
/// `Certify` turns on the certified-optimality gate. All pin
/// `solver_jobs` to 1 so results are reproducible and cacheable.
fn build_compiler(req: &SolveRequest, ladder: VoltageLadder) -> Result<DvsCompiler, String> {
    let solver = dvs_compiler::SolverChoice::parse(&req.solver)
        .ok_or_else(|| format!("bad solver `{}`", req.solver))?;
    DvsCompiler::builder(
        Machine::paper_default(),
        ladder,
        TransitionModel::with_capacitance_uf(req.capacitance_uf),
    )
    .validation(req.op == SolveOp::Compile)
    .certify(req.op == SolveOp::Certify)
    .solver_jobs(1)
    .solver(solver)
    .build()
    .map_err(|e| format!("bad compiler settings: {e}"))
}

/// Derives the cache key: the canonical request string (resolved
/// benchmark name, deadline index, op, and the compiler's semantic
/// config digest) hashed with FNV-1a 64. Validation of the request
/// happens here, so a `bad_request` never reaches the queue.
fn request_key(req: &SolveRequest) -> Result<(u64, String), String> {
    let b = find_benchmark(&req.benchmark)
        .ok_or_else(|| format!("unknown benchmark `{}`", req.benchmark))?;
    if !(1..=5).contains(&req.deadline_index) {
        return Err("deadline_index must be 1..5".to_string());
    }
    let ladder = ladder(req.levels).ok_or_else(|| format!("bad levels {}", req.levels))?;
    let compiler = build_compiler(req, ladder)?;
    let canonical = format!(
        "dvs-serve.request.v1 op={} benchmark={} deadline_index={} config={:016x}",
        req.op.name(),
        b.name(),
        req.deadline_index,
        compiler.config_digest()
    );
    let mut h = dvs_compiler::fingerprint::Fnv64::new();
    h.write_str(&canonical);
    Ok((h.finish(), canonical))
}

/// Process-wide content-addressed store of compiled replay bytecode.
///
/// The bytecode depends only on the workload and the machine/ladder/
/// regulator configuration — never on the deadline index or solver — so
/// `evaluate` requests that differ only in those fields share one compile.
/// Keys reuse the solve cache's canonical-string + FNV-1a discipline.
fn cached_bytecode(
    b: Benchmark,
    req: &SolveRequest,
    compiler: &DvsCompiler,
    cfg: &dvs_ir::Cfg,
    trace: &dvs_sim::Trace,
    ladder: &VoltageLadder,
) -> Arc<dvs_replay::ReplayBytecode> {
    static STORE: std::sync::OnceLock<Mutex<HashMap<u64, Arc<dvs_replay::ReplayBytecode>>>> =
        std::sync::OnceLock::new();
    let canonical = format!(
        "dvs-serve.bytecode.v1 benchmark={} levels={} capacitance_uf={} config={:016x}",
        b.name(),
        req.levels,
        req.capacitance_uf,
        compiler.config_digest()
    );
    let mut h = dvs_compiler::fingerprint::Fnv64::new();
    h.write_str(&canonical);
    let key = h.finish();
    let store = STORE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(code) = store.lock().expect("bytecode store poisoned").get(&key) {
        dvs_obs::counter("serve.bytecode.hits", 1);
        return Arc::clone(code);
    }
    let code = Arc::new(dvs_replay::compile(
        compiler.machine(),
        cfg,
        trace,
        ladder,
        compiler.transition(),
    ));
    dvs_obs::counter("serve.bytecode.compiles", 1);
    store
        .lock()
        .expect("bytecode store poisoned")
        .entry(key)
        .or_insert_with(|| Arc::clone(&code))
        .clone()
}

/// A finished solve: the canonical JSON body plus worker-side timings
/// that ride the trace tree but never the (cacheable) body.
struct Solved {
    body: String,
    cert_check_us: Option<f64>,
}

impl Solved {
    fn plain(body: String) -> Solved {
        Solved {
            body,
            cert_check_us: None,
        }
    }
}

/// Runs one solve to its canonical JSON body. This is the expensive path
/// (tens to hundreds of milliseconds per workload); everything above it
/// exists to avoid re-entering it.
fn execute_solve(req: &SolveRequest) -> Result<Solved, String> {
    let b = find_benchmark(&req.benchmark).ok_or("benchmark vanished after admission")?;
    let ladder = ladder(req.levels).ok_or("ladder vanished after admission")?;
    let compiler = build_compiler(req, ladder.clone())?;
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let scheme = DeadlineScheme::measure(compiler.machine(), &cfg, &trace);
    let deadline = scheme.deadline_us(req.deadline_index);
    let (profile, _) = compiler.profile(&cfg, &trace);
    let header = |extra: Vec<(String, Json)>| {
        let mut members = vec![
            ("benchmark".to_string(), Json::from(b.name())),
            ("deadline_index".to_string(), Json::from(req.deadline_index)),
            ("deadline_us".to_string(), Json::from(deadline)),
        ];
        members.extend(extra);
        Json::Obj(members).dump()
    };
    match req.op {
        SolveOp::Compile => {
            let result = compiler
                .compile_and_validate(&cfg, &trace, &profile, deadline)
                .map_err(|e| format!("compile failed: {e}"))?;
            Ok(Solved::plain(header(vec![(
                "compile".to_string(),
                result.to_json(),
            )])))
        }
        SolveOp::Certify => {
            let result = compiler
                .compile(&cfg, &profile, deadline)
                .map_err(|e| format!("compile failed: {e}"))?;
            let cert = result
                .milp
                .certificate
                .as_ref()
                .ok_or("certify solve produced no certificate")?;
            // The encoded certificate is canonical JSON; embedding the
            // parsed object keeps the cached body one self-describing
            // document (`Json` round-trips numbers bit-exactly).
            let encoded = Json::parse(&cert.encoded)
                .map_err(|e| format!("certificate did not re-parse: {e}"))?;
            let body = header(vec![
                ("compile".to_string(), result.to_json()),
                (
                    "certificate".to_string(),
                    Json::obj([
                        ("report", cert.report.to_json()),
                        ("bytes", Json::from(cert.encoded.len() as u64)),
                        ("encoded", encoded),
                    ]),
                ),
            ]);
            Ok(Solved {
                body,
                cert_check_us: Some(cert.check_us),
            })
        }
        SolveOp::Verify => {
            let result = compiler
                .compile(&cfg, &profile, deadline)
                .map_err(|e| format!("compile failed: {e}"))?;
            let emitted = result.analysis.emitted_mask();
            let report = dvs_verify::verify(&dvs_verify::VerifyInput {
                cfg: &cfg,
                profile: &profile,
                ladder: &ladder,
                transition: compiler.transition(),
                schedule: &result.milp.schedule,
                emitted: Some(&emitted),
                deadline_us: Some(deadline),
            });
            Ok(Solved::plain(header(vec![(
                "report".to_string(),
                report.to_json(),
            )])))
        }
        SolveOp::Evaluate => {
            let result = compiler
                .compile(&cfg, &profile, deadline)
                .map_err(|e| format!("compile failed: {e}"))?;
            let code = cached_bytecode(b, req, &compiler, &cfg, &trace, &ladder);
            let run = code.replay(&result.milp.schedule);
            let stats = code.stats();
            Ok(Solved::plain(header(vec![(
                "evaluate".to_string(),
                Json::obj([
                    ("time_us", Json::from(run.time_us)),
                    ("processor_energy_uj", Json::from(run.processor_energy_uj)),
                    ("dram_energy_uj", Json::from(run.dram_energy_uj)),
                    ("transitions", Json::from(run.transitions)),
                    ("transition_energy_uj", Json::from(run.transition_energy_uj)),
                    ("transition_time_us", Json::from(run.transition_time_us)),
                    (
                        "predicted_energy_uj",
                        Json::from(result.milp.predicted_energy_uj),
                    ),
                    (
                        "bytecode",
                        Json::obj([
                            ("trace_blocks", Json::from(stats.trace_blocks)),
                            ("trace_insts", Json::from(stats.trace_insts)),
                            ("block_ops", Json::from(stats.block_ops)),
                            ("variants", Json::from(stats.variants)),
                            ("variant_insts", Json::from(stats.variant_insts)),
                        ]),
                    ),
                ]),
            )])))
        }
    }
}

/// The `stats` response body.
fn stats_json(state: &State) -> Json {
    let (cache, pending, inflight) = {
        let coord = state.coord.lock().expect("coord poisoned");
        (coord.cache.stats(), coord.queue.len(), coord.inflight.len())
    };
    let c = &state.counters;
    Json::obj([
        (
            "cache",
            Json::obj([
                ("hits", Json::from(cache.hits)),
                ("misses", Json::from(cache.misses)),
                ("evictions", Json::from(cache.evictions)),
                ("insertions", Json::from(cache.insertions)),
                ("entries", Json::from(cache.entries)),
                ("used_bytes", Json::from(cache.used_bytes)),
                ("capacity_bytes", Json::from(cache.capacity_bytes)),
            ]),
        ),
        (
            "counters",
            Json::obj([
                ("requests", Json::from(c.requests.load(Ordering::Relaxed))),
                ("solves", Json::from(c.solves.load(Ordering::Relaxed))),
                ("coalesced", Json::from(c.coalesced.load(Ordering::Relaxed))),
                ("shed", Json::from(c.shed.load(Ordering::Relaxed))),
                ("timeouts", Json::from(c.timeouts.load(Ordering::Relaxed))),
                ("errors", Json::from(c.errors.load(Ordering::Relaxed))),
            ]),
        ),
        (
            "queue",
            Json::obj([
                ("depth", Json::from(state.queue_depth)),
                ("pending", Json::from(pending)),
                ("inflight", Json::from(inflight)),
                ("pool_queued", Json::from(state.pool.queued())),
            ]),
        ),
        ("jobs", Json::from(state.jobs)),
        (
            "uptime_s",
            Json::from(state.started.elapsed().as_secs_f64()),
        ),
    ])
}
