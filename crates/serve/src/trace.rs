//! Per-request trace trees for the daemon.
//!
//! Unlike the process-global `dvs-obs` span sink, a [`TraceCtx`] belongs
//! to **one** request: the connection handler owns it for the request's
//! lifetime, so there is no aggregation, no locking and no sampling —
//! every solve request gets a complete tree of the stages it passed
//! through (queue wait, cache lookup, coalesce join, solve, emit). The
//! finished tree rides back to the client inside the response *envelope*
//! (never the cached result body, which must stay byte-identical between
//! cold and warm serves) and is retained in a bounded ring that the
//! `traces` op renders as Chrome trace events.
//!
//! Span timestamps are microsecond offsets from the request's arrival,
//! so a tree is self-contained: no wall-clock epoch leaks into the wire
//! format.

use dvs_obs::json::Json;
use std::time::Instant;

/// The span id of the root `request` span every [`TraceCtx`] starts with.
pub const ROOT_SPAN: u64 = 1;

/// One timed stage of a request. `parent` is `0` only for the root span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span id, unique within the trace (root is [`ROOT_SPAN`]).
    pub id: u64,
    /// Parent span id (`0` for the root).
    pub parent: u64,
    /// Stage name (`queue-wait`, `cache-lookup`, `solve`, ...).
    pub name: &'static str,
    /// Start, in microseconds since the request arrived.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// A per-request trace under construction. Created when a solve request
/// is parsed, finished (and serialized) when its reply is built.
#[derive(Debug)]
pub struct TraceCtx {
    trace_id: u64,
    t0: Instant,
    spans: Vec<TraceSpan>,
    next_id: u64,
}

impl TraceCtx {
    /// Starts a trace rooted at a `request` span beginning at `t0` (the
    /// instant the request frame was parsed). `trace_id` is either the
    /// client-supplied id or one the server assigned.
    #[must_use]
    pub fn new(trace_id: u64, t0: Instant) -> TraceCtx {
        TraceCtx {
            trace_id,
            t0,
            spans: vec![TraceSpan {
                id: ROOT_SPAN,
                parent: 0,
                name: "request",
                ts_us: 0.0,
                dur_us: 0.0,
            }],
            next_id: ROOT_SPAN + 1,
        }
    }

    /// The trace id this context was created with.
    #[must_use]
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Microseconds elapsed since the request arrived.
    #[must_use]
    pub fn now_us(&self) -> f64 {
        Instant::now()
            .checked_duration_since(self.t0)
            .map_or(0.0, |d| d.as_secs_f64() * 1e6)
    }

    /// Opens a child span starting now; close it with [`TraceCtx::end`].
    pub fn begin(&mut self, parent: u64, name: &'static str) -> u64 {
        let ts_us = self.now_us();
        self.push(parent, name, ts_us, 0.0)
    }

    /// Closes a span opened with [`TraceCtx::begin`]. Unknown ids are
    /// ignored.
    pub fn end(&mut self, id: u64) {
        let now = self.now_us();
        if let Some(s) = self.spans.iter_mut().find(|s| s.id == id) {
            s.dur_us = (now - s.ts_us).max(0.0);
        }
    }

    /// Records a span whose timing was measured elsewhere — the
    /// dispatcher observes queue wait and solve time on the worker side
    /// and ships them back with the result, so the connection thread
    /// places them on the request timeline after the fact.
    pub fn record(&mut self, parent: u64, name: &'static str, ts_us: f64, dur_us: f64) -> u64 {
        self.push(parent, name, ts_us, dur_us.max(0.0))
    }

    fn push(&mut self, parent: u64, name: &'static str, ts_us: f64, dur_us: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.spans.push(TraceSpan {
            id,
            parent,
            name,
            ts_us,
            dur_us,
        });
        id
    }

    /// Closes the root span and renders the finished tree:
    /// `{"trace_id": N, "spans": [{id, parent, name, ts_us, dur_us}, ...]}`.
    #[must_use]
    pub fn finish(mut self) -> Json {
        self.spans[0].dur_us = self.now_us();
        Json::obj([
            ("trace_id", Json::from(self.trace_id)),
            (
                "spans",
                Json::Arr(self.spans.iter().map(span_json).collect()),
            ),
        ])
    }
}

fn span_json(s: &TraceSpan) -> Json {
    Json::obj([
        ("id", Json::from(s.id)),
        ("parent", Json::from(s.parent)),
        ("name", Json::from(s.name)),
        ("ts_us", Json::from(s.ts_us)),
        ("dur_us", Json::from(s.dur_us)),
    ])
}

/// Renders one finished trace tree (as produced by [`TraceCtx::finish`])
/// into Chrome trace events: one complete (`"ph":"X"`) event per span,
/// with the trace id as the `tid` so each request gets its own track in
/// `chrome://tracing` / Perfetto.
#[must_use]
pub fn chrome_events(tree: &Json) -> Vec<Json> {
    let trace_id = tree.get("trace_id").and_then(Json::as_u64).unwrap_or(0);
    let Some(spans) = tree.get("spans").and_then(Json::as_arr) else {
        return Vec::new();
    };
    spans
        .iter()
        .map(|s| {
            let field = |k: &str| s.get(k).cloned().unwrap_or(Json::from(0u64));
            Json::obj([
                ("name", field("name")),
                ("cat", Json::from("dvs.serve")),
                ("ph", Json::from("X")),
                ("ts", field("ts_us")),
                ("dur", field("dur_us")),
                ("pid", Json::from(1u64)),
                ("tid", Json::from(trace_id)),
                (
                    "args",
                    Json::obj([("span", field("id")), ("parent", field("parent"))]),
                ),
            ])
        })
        .collect()
}

/// Pulls the duration of the first span named `name` out of a finished
/// trace tree; `None` when the tree has no such span. Used by the load
/// generator to extract `queue-wait` / `cache-lookup` times from reply
/// envelopes.
#[must_use]
pub fn span_dur_us(tree: &Json, name: &str) -> Option<f64> {
    tree.get("spans")?.as_arr()?.iter().find_map(|s| {
        (s.get("name").and_then(Json::as_str) == Some(name))
            .then(|| s.get("dur_us").and_then(Json::as_f64))
            .flatten()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trees_nest_and_serialize() {
        let mut tr = TraceCtx::new(7, Instant::now());
        let lookup = tr.begin(ROOT_SPAN, "cache-lookup");
        tr.end(lookup);
        tr.record(ROOT_SPAN, "queue-wait", 10.0, 25.0);
        tr.record(ROOT_SPAN, "solve", 35.0, 100.0);
        let tree = tr.finish();
        assert_eq!(tree.get("trace_id").and_then(Json::as_u64), Some(7));
        let spans = tree.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 4);
        // Root first, everything else parented under it.
        assert_eq!(spans[0].get("id").and_then(Json::as_u64), Some(ROOT_SPAN));
        assert_eq!(spans[0].get("parent").and_then(Json::as_u64), Some(0));
        for s in &spans[1..] {
            assert_eq!(s.get("parent").and_then(Json::as_u64), Some(ROOT_SPAN));
        }
        assert_eq!(span_dur_us(&tree, "queue-wait"), Some(25.0));
        assert_eq!(span_dur_us(&tree, "no-such-span"), None);
        // Round-trips through the wire form.
        let back = Json::parse(&tree.dump()).unwrap();
        assert_eq!(span_dur_us(&back, "solve"), Some(100.0));
    }

    #[test]
    fn chrome_events_carry_span_links() {
        let mut tr = TraceCtx::new(42, Instant::now());
        tr.record(ROOT_SPAN, "solve", 1.0, 2.0);
        let tree = tr.finish();
        let events = chrome_events(&tree);
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(e.get("tid").and_then(Json::as_u64), Some(42));
            assert!(e.get("args").and_then(|a| a.get("parent")).is_some());
        }
        assert_eq!(events[1].get("name").and_then(Json::as_str), Some("solve"));
    }
}
