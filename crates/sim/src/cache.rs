/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub block_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (self.block_bytes * self.ways as u64)).max(1) as usize
    }
}

/// Hit/miss outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line was present.
    Hit,
    /// Line was absent and has been filled.
    Miss,
}

/// Access counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses among them.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; zero when no accesses were made.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags only — the simulator needs hit/miss behaviour, not data. Sets are
/// selected by the usual index bits; each set keeps its ways ordered
/// most-recently-used first.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// `sets[s]` is an MRU-ordered list of resident tags.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    block_shift: u32,
    index_mask: u64,
}

impl CacheSim {
    /// Builds an empty (cold) cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        CacheSim {
            config,
            sets: vec![Vec::with_capacity(config.ways); num_sets],
            stats: CacheStats::default(),
            block_shift: config.block_bytes.trailing_zeros(),
            index_mask: num_sets as u64 - 1,
        }
    }

    /// The geometry this cache was built with.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses the byte address, updating LRU state and filling on miss.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.stats.accesses += 1;
        let line = addr >> self.block_shift;
        let set_ix = (line & self.index_mask) as usize;
        let tag = line >> self.index_mask.count_ones();
        let set = &mut self.sets[set_ix];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            AccessOutcome::Hit
        } else {
            if set.len() == self.config.ways {
                set.pop();
            }
            set.insert(0, tag);
            self.stats.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// Probes without updating state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.block_shift;
        let set_ix = (line & self.index_mask) as usize;
        let tag = line >> self.index_mask.count_ones();
        self.sets[set_ix].contains(&tag)
    }

    /// Running statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empties the cache and zeroes statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

/// A fully-associative TLB with LRU replacement, reused for both I and D
/// sides.
#[derive(Debug, Clone)]
pub struct TlbSim {
    entries: usize,
    page_shift: u32,
    /// MRU-ordered resident page numbers.
    pages: Vec<u64>,
    stats: CacheStats,
}

impl TlbSim {
    /// Builds an empty TLB for `entries` pages of `page_bytes` each.
    #[must_use]
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        TlbSim {
            entries,
            page_shift: page_bytes.trailing_zeros(),
            pages: Vec::with_capacity(entries),
            stats: CacheStats::default(),
        }
    }

    /// Translates `addr`, returning whether the page was resident.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.stats.accesses += 1;
        let page = addr >> self.page_shift;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            let p = self.pages.remove(pos);
            self.pages.insert(0, p);
            AccessOutcome::Hit
        } else {
            if self.pages.len() == self.entries {
                self.pages.pop();
            }
            self.pages.insert(0, page);
            self.stats.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// Running statistics.
    #[must_use]
    #[allow(dead_code)] // Exposed for diagnostics; not consumed on the hot path.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheSim {
        // 4 sets x 2 ways x 32B = 256 B.
        CacheSim::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            block_bytes: 32,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            block_bytes: 32,
        };
        assert_eq!(c.num_sets(), 512);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small();
        assert_eq!(c.access(0x100), AccessOutcome::Miss);
        assert_eq!(c.access(0x100), AccessOutcome::Hit);
        assert_eq!(c.access(0x11F), AccessOutcome::Hit); // same 32B line
        assert_eq!(c.access(0x120), AccessOutcome::Miss); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets*block = 128).
        let (a, b, d) = (0x000, 0x080, 0x100);
        c.access(a); // miss
        c.access(b); // miss; set = [b, a]
        c.access(a); // hit;  set = [a, b]
        c.access(d); // miss; evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
        assert_eq!(c.access(b), AccessOutcome::Miss);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0x0);
        let before = c.stats();
        assert!(c.probe(0x0));
        assert!(!c.probe(0x999));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = small();
        c.access(0x40);
        c.reset();
        assert!(!c.probe(0x40));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small();
        // 16 distinct lines cycled twice through a 8-line cache with an
        // LRU-hostile access order: every access misses.
        for _round in 0..2 {
            for i in 0..16u64 {
                c.access(i * 32);
            }
        }
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn working_set_within_cache_stops_missing() {
        let mut c = small();
        for _round in 0..4 {
            for i in 0..8u64 {
                c.access(i * 32);
            }
        }
        // 8 cold misses, then hits forever.
        assert_eq!(c.stats().misses, 8);
        assert_eq!(c.stats().accesses, 32);
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tlb_tracks_pages() {
        let mut t = TlbSim::new(2, 4096);
        assert_eq!(t.access(0x0000), AccessOutcome::Miss);
        assert_eq!(t.access(0x0FFF), AccessOutcome::Hit); // same page
        assert_eq!(t.access(0x1000), AccessOutcome::Miss);
        assert_eq!(t.access(0x2000), AccessOutcome::Miss); // evicts page 0
        assert_eq!(t.access(0x0000), AccessOutcome::Miss);
        assert_eq!(t.stats().accesses, 5);
    }
}
