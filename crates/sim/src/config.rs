use crate::{CacheConfig, PredictorConfig};

/// Full machine configuration. `SimConfig::default()` reproduces the
/// paper's Table 2 setup.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Register update unit (instruction window) capacity.
    pub ruu_size: usize,
    /// Load/store queue capacity.
    pub lsq_size: usize,
    /// Fetch queue capacity.
    pub fetch_queue: usize,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions decoded per cycle.
    pub decode_width: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Number of simple integer ALUs.
    pub int_alus: usize,
    /// Number of integer multiply/divide units.
    pub int_mult: usize,
    /// Number of FP adders.
    pub fp_adders: usize,
    /// Number of FP multipliers.
    pub fp_mult: usize,
    /// Number of FP divide/sqrt units.
    pub fp_div: usize,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
    /// Main-memory service time in µs — **absolute**, not cycles: memory is
    /// asynchronous with the CPU clock, the property compile-time DVS
    /// exploits.
    pub mem_latency_us: f64,
    /// TLB entries (each of I/D).
    pub tlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// TLB miss penalty in cycles.
    pub tlb_miss_penalty: u32,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// Branch misprediction pipeline-refill penalty in cycles.
    pub mispredict_penalty: u32,
    /// Tagged next-line prefetch into L1D: a demand miss also fills the
    /// following line (zero modelled latency/bandwidth cost — an idealized
    /// prefetcher for ablations). Off in the paper configuration.
    pub next_line_prefetch: bool,
}

impl Default for SimConfig {
    /// The paper's Table 2 configuration: 64-entry RUU, 32-entry LSQ,
    /// 8-entry fetch queue, 4-wide everywhere, 4+1 integer and 1+1+1 FP
    /// units, 64 KB 4-way 32 B L1s at 1 cycle, 512 KB 4-way unified L2 at
    /// 16 cycles, 32-entry TLBs with 4096-byte pages, combined branch
    /// predictor with 2K bimodal, 1K/8-bit two-level, 1K chooser and a
    /// 512-entry 4-way BTB. Main memory is asynchronous at 80 ns.
    fn default() -> Self {
        SimConfig {
            ruu_size: 64,
            lsq_size: 32,
            fetch_queue: 8,
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            int_alus: 4,
            int_mult: 1,
            fp_adders: 1,
            fp_mult: 1,
            fp_div: 1,
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                block_bytes: 32,
            },
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                block_bytes: 32,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 4,
                block_bytes: 32,
            },
            l1_latency: 1,
            l2_latency: 16,
            mem_latency_us: 0.08, // 80 ns
            tlb_entries: 32,
            page_bytes: 4096,
            tlb_miss_penalty: 30,
            predictor: PredictorConfig::default(),
            mispredict_penalty: 7,
            next_line_prefetch: false,
        }
    }
}

impl SimConfig {
    /// A scaled-down configuration for fast unit tests: tiny caches so that
    /// misses are easy to provoke deterministically.
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        SimConfig {
            l1d: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                block_bytes: 32,
            },
            l1i: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                block_bytes: 32,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 2,
                block_bytes: 32,
            },
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table2() {
        let c = SimConfig::default();
        assert_eq!(c.ruu_size, 64);
        assert_eq!(c.lsq_size, 32);
        assert_eq!(c.fetch_queue, 8);
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.int_alus, 4);
        assert_eq!(c.l1d.size_bytes, 65536);
        assert_eq!(c.l1d.ways, 4);
        assert_eq!(c.l1d.block_bytes, 32);
        assert_eq!(c.l2.size_bytes, 524_288);
        assert_eq!(c.l2_latency, 16);
        assert_eq!(c.tlb_entries, 32);
        assert_eq!(c.page_bytes, 4096);
        assert!(c.mem_latency_us > 0.0);
        assert!(!c.next_line_prefetch, "paper config has no prefetcher");
    }
}
