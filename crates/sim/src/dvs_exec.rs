//! Re-execution of a trace under a compile-time DVS schedule.
//!
//! The MILP predicts time and energy from per-block profile averages; this
//! module *validates* a schedule by re-running the dataflow timing model
//! with the clock actually changing at mode-set points, charging the
//! regulator's transition time and energy on every real mode change (a
//! mode-set instruction whose value matches the current mode is silent, as
//! in the paper).
//!
//! Because the clock varies, the timeline here is kept in **microseconds**
//! rather than cycles; instruction latencies convert through the period of
//! whichever mode the surrounding block was assigned.

use crate::{BranchPredictor, DataLevel, Machine, MemoryHierarchy, Trace};
use dvs_ir::{Cfg, Opcode};
use dvs_vf::{ModeId, TransitionModel, VoltageLadder};

/// Pipeline front-end depth in cycles (matches the fixed-frequency model).
const FRONTEND_DEPTH: f64 = 3.0;
const INST_BYTES: u64 = 4;
const BLOCK_STRIDE: u64 = 1024;

/// A compile-time DVS mode assignment: one mode per CFG edge plus the mode
/// the program starts in (the paper's mode-set on the virtual start edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSchedule {
    /// Mode in force when the entry block begins executing.
    pub initial: ModeId,
    /// Mode set by each edge, indexed by [`dvs_ir::EdgeId`].
    pub edge_modes: Vec<ModeId>,
}

impl EdgeSchedule {
    /// A schedule that pins every edge to `mode` (the single-frequency
    /// baseline; it performs no transitions).
    #[must_use]
    pub fn uniform(cfg: &Cfg, mode: ModeId) -> Self {
        EdgeSchedule {
            initial: mode,
            edge_modes: vec![mode; cfg.num_edges()],
        }
    }

    /// Number of *static* mode-set points whose value differs from some
    /// incoming context — an upper bound on distinct settings; dynamic
    /// transition counting happens during execution.
    #[must_use]
    pub fn distinct_modes(&self) -> usize {
        let mut modes: Vec<ModeId> = self.edge_modes.clone();
        modes.push(self.initial);
        modes.sort_unstable();
        modes.dedup();
        modes.len()
    }
}

/// Measured outcome of executing a trace under an [`EdgeSchedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledRun {
    /// Total wall-clock time, µs (includes transition time).
    pub time_us: f64,
    /// On-chip processor energy, µJ (includes transition energy).
    pub processor_energy_uj: f64,
    /// Off-chip DRAM energy, µJ (reported separately, as in the paper).
    pub dram_energy_uj: f64,
    /// Dynamic mode transitions actually performed.
    pub transitions: u64,
    /// Energy spent in transitions, µJ.
    pub transition_energy_uj: f64,
    /// Time spent in transitions, µs.
    pub transition_time_us: f64,
}

impl Machine {
    /// Executes `trace` under `schedule`, switching the clock/voltage on
    /// edges whose assigned mode differs from the current one and charging
    /// `transition` costs for each switch.
    ///
    /// # Panics
    ///
    /// Panics if `schedule.edge_modes` does not cover every CFG edge or if
    /// the trace is inconsistent with `cfg`.
    #[must_use]
    pub fn run_scheduled(
        &self,
        cfg: &Cfg,
        trace: &Trace,
        ladder: &VoltageLadder,
        schedule: &EdgeSchedule,
        transition: &TransitionModel,
    ) -> ScheduledRun {
        assert_eq!(
            schedule.edge_modes.len(),
            cfg.num_edges(),
            "schedule must cover every edge"
        );
        let _span = dvs_obs::span!("sim.run_scheduled");
        let cfgm = self.config();
        let em = self.energy_model();

        let mut hier = MemoryHierarchy::new(cfgm);
        let mut pred = BranchPredictor::new(cfgm.predictor);

        let mut reg_ready = [0.0f64; 64];
        let fu_pools: [usize; 7] = [
            cfgm.int_alus,
            cfgm.int_mult,
            cfgm.int_mult,
            cfgm.fp_adders,
            cfgm.fp_mult,
            cfgm.fp_div,
            1,
        ];
        let mut fu_free: Vec<Vec<f64>> = fu_pools.iter().map(|&n| vec![0.0; n.max(1)]).collect();
        let mut window_ring = vec![0.0f64; cfgm.ruu_size];
        let mut lsq_ring = vec![0.0f64; cfgm.lsq_size];
        let mut commit_ring = vec![0.0f64; cfgm.commit_width];

        let mut fetch_us = 0.0f64;
        let mut fetch_slots = 0usize;
        let mut mem_free = 0.0f64;
        let mut prev_commit = 0.0f64;
        let mut inst_index = 0usize;
        let mut mem_index = 0usize;
        let mut pending_redirect = 0.0f64;

        let mut cap_weighted_uj = 0.0f64; // Σ cap·V² accumulated per block mode
        let mut dram_uj = 0.0f64;
        let mut transitions = 0u64;
        let mut transition_energy = 0.0f64;
        let mut transition_time = 0.0f64;

        let mut current = schedule.initial;
        let mut prev_block: Option<dvs_ir::BlockId> = None;

        for dyn_block in trace.blocks() {
            // Mode-set on the edge we arrive through.
            if let Some(pb) = prev_block {
                let e = cfg
                    .edge_between(pb, dyn_block.block)
                    .expect("trace follows CFG edges");
                let target = schedule.edge_modes[e.index()];
                if target != current {
                    let st = transition.mode_time_us(ladder, current, target);
                    let se = transition.mode_energy_uj(ladder, current, target);
                    let barrier = fetch_us.max(prev_commit) + st;
                    fetch_us = barrier;
                    fetch_slots = 0;
                    transitions += 1;
                    transition_energy += se;
                    transition_time += st;
                    current = target;
                }
            }
            prev_block = Some(dyn_block.block);

            let point = ladder.point(current);
            let period = point.period_us();
            let vv = point.voltage * point.voltage;
            let mem_lat_us = cfgm.mem_latency_us;

            let bb = cfg.block(dyn_block.block);
            let base_pc = dyn_block.block.index() as u64 * BLOCK_STRIDE;
            fetch_us = fetch_us.max(pending_redirect);
            if pending_redirect > 0.0 {
                fetch_slots = 0;
                pending_redirect = 0.0;
            }

            let line_bytes = cfgm.l1i.block_bytes;
            let mut next_line_pc = base_pc;
            let mut addr_ix = 0usize;

            for (ii, inst) in bb.insts.iter().enumerate() {
                let pc = base_pc + (ii as u64 * INST_BYTES) % BLOCK_STRIDE;
                if pc >= next_line_pc {
                    let (lvl, cyc) = hier.inst_access(pc);
                    cap_weighted_uj += crate::EnergyModel::cap_to_uj(em.l1_nf, point.voltage);
                    match lvl {
                        DataLevel::L1 => {}
                        DataLevel::L2 => {
                            cap_weighted_uj +=
                                crate::EnergyModel::cap_to_uj(em.l2_nf, point.voltage);
                            fetch_us += f64::from(cyc - cfgm.l1_latency) * period;
                        }
                        DataLevel::Memory => {
                            cap_weighted_uj +=
                                crate::EnergyModel::cap_to_uj(em.l2_nf, point.voltage);
                            dram_uj += em.dram_uj_per_access;
                            let ready = fetch_us + f64::from(cyc) * period;
                            let start = ready.max(mem_free);
                            let end = start + mem_lat_us;
                            mem_free = end;
                            fetch_us = end;
                        }
                    }
                    next_line_pc = (pc / line_bytes + 1) * line_bytes;
                }

                if fetch_slots >= cfgm.fetch_width {
                    fetch_us += period;
                    fetch_slots = 0;
                }
                let fetch_time = fetch_us;
                fetch_slots += 1;

                let dispatch_ready = fetch_time + FRONTEND_DEPTH * period;
                let window_gate = window_ring[inst_index % cfgm.ruu_size];

                let mut src_ready = 0.0f64;
                for s in &inst.srcs {
                    if !s.is_zero() {
                        src_ready = src_ready.max(reg_ready[s.0 as usize % 64]);
                    }
                }

                let pool_ix = match inst.opcode {
                    Opcode::IntAlu | Opcode::Branch | Opcode::Load | Opcode::Store => 0,
                    Opcode::IntMul => 1,
                    Opcode::IntDiv => 2,
                    Opcode::FpAdd => 3,
                    Opcode::FpMul => 4,
                    Opcode::FpDiv => 5,
                    Opcode::Nop => 6,
                };
                let pool = &mut fu_free[pool_ix];
                let (unit_ix, unit_free) = pool
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .expect("pool non-empty");

                let mut issue = dispatch_ready
                    .max(window_gate)
                    .max(src_ready)
                    .max(unit_free);
                let is_mem = inst.opcode.is_mem();
                if is_mem {
                    issue = issue.max(lsq_ring[mem_index % cfgm.lsq_size]);
                }
                let occupancy = match inst.opcode {
                    Opcode::IntDiv | Opcode::FpDiv => f64::from(inst.opcode.base_latency()),
                    _ => 1.0,
                };
                pool[unit_ix] = issue + occupancy * period;

                let mut complete = issue + f64::from(inst.opcode.base_latency()) * period;
                if is_mem {
                    let addr = dyn_block.addrs[addr_ix];
                    addr_ix += 1;
                    let (lvl, cyc) = hier.data_access(addr);
                    cap_weighted_uj += crate::EnergyModel::cap_to_uj(em.l1_nf, point.voltage);
                    match lvl {
                        DataLevel::L1 | DataLevel::L2 => {
                            if lvl == DataLevel::L2 {
                                cap_weighted_uj +=
                                    crate::EnergyModel::cap_to_uj(em.l2_nf, point.voltage);
                            }
                            if inst.opcode == Opcode::Load {
                                complete = issue + (1.0 + f64::from(cyc)) * period;
                            }
                        }
                        DataLevel::Memory => {
                            cap_weighted_uj +=
                                crate::EnergyModel::cap_to_uj(em.l2_nf, point.voltage);
                            dram_uj += em.dram_uj_per_access;
                            let ready = issue + (1.0 + f64::from(cyc)) * period;
                            let start = ready.max(mem_free);
                            let end = start + mem_lat_us;
                            mem_free = end;
                            if inst.opcode == Opcode::Load {
                                complete = end;
                            }
                        }
                    }
                }

                if inst.opcode.is_branch() {
                    cap_weighted_uj += crate::EnergyModel::cap_to_uj(em.bpred_nf, point.voltage);
                    let target_pc = base_pc + BLOCK_STRIDE;
                    let correct = pred.predict_and_update(
                        pc,
                        dyn_block.taken,
                        if dyn_block.taken { target_pc } else { 0 },
                    );
                    if !correct {
                        pending_redirect = pending_redirect
                            .max(complete + f64::from(cfgm.mispredict_penalty) * period);
                    }
                }

                let commit = (complete + period)
                    .max(prev_commit)
                    .max(commit_ring[inst_index % cfgm.commit_width] + period);
                prev_commit = commit;
                commit_ring[inst_index % cfgm.commit_width] = commit;
                window_ring[inst_index % cfgm.ruu_size] = commit;
                if is_mem {
                    lsq_ring[mem_index % cfgm.lsq_size] = commit;
                    mem_index += 1;
                }
                if inst.writes_reg() {
                    reg_ready[inst.dest.0 as usize % 64] = complete;
                }

                let reads = inst.srcs.iter().filter(|s| !s.is_zero()).count() as f64;
                let writes = if inst.writes_reg() { 1.0 } else { 0.0 };
                let cap = em.frontend_nf
                    + em.window_nf
                    + em.clock_nf
                    + em.regfile_nf * (reads + writes)
                    + em.fu_nf(inst.opcode);
                cap_weighted_uj += cap * vv * 1e-3;

                inst_index += 1;
            }
        }

        if dvs_obs::enabled() {
            dvs_obs::counter("sim.scheduled_runs", 1);
            dvs_obs::counter("emit.mode_switches", transitions);
            dvs_obs::histogram("sim.scheduled_time_us", prev_commit);
        }
        ScheduledRun {
            time_us: prev_commit,
            processor_energy_uj: cap_weighted_uj + transition_energy,
            dram_energy_uj: dram_uj,
            transitions,
            transition_energy_uj: transition_energy,
            transition_time_us: transition_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, TraceBuilder};
    use dvs_ir::{CfgBuilder, Inst, Opcode, Reg};
    use dvs_vf::AlphaPower;

    fn program() -> (Cfg, Trace) {
        let mut b = CfgBuilder::new("p");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        for _ in 0..8 {
            b.push(body, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1)]));
        }
        b.push(h, Inst::branch(Reg(1)));
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let cfg = b.finish(e, x).unwrap();
        let (e, h, body, x) = (
            cfg.entry(),
            cfg.block_by_label("head").unwrap(),
            cfg.block_by_label("body").unwrap(),
            cfg.exit(),
        );
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        for _ in 0..100 {
            tb.step(h, vec![]);
            tb.step(body, vec![]);
        }
        tb.step(h, vec![]);
        tb.step(x, vec![]);
        let t = tb.finish().unwrap();
        (cfg, t)
    }

    fn ladder() -> VoltageLadder {
        VoltageLadder::xscale3(&AlphaPower::paper())
    }

    #[test]
    fn uniform_schedule_makes_no_transitions() {
        let (cfg, t) = program();
        let m = Machine::paper_default();
        let l = ladder();
        let tm = TransitionModel::with_capacitance_uf(10.0);
        let r = m.run_scheduled(&cfg, &t, &l, &EdgeSchedule::uniform(&cfg, ModeId(1)), &tm);
        assert_eq!(r.transitions, 0);
        assert_eq!(r.transition_energy_uj, 0.0);
        assert!(r.time_us > 0.0);
    }

    #[test]
    fn uniform_schedule_matches_fixed_frequency_run() {
        let (cfg, t) = program();
        let m = Machine::paper_default();
        let l = ladder();
        let tm = TransitionModel::free();
        for (mode, point) in l.iter() {
            let sched = m.run_scheduled(&cfg, &t, &l, &EdgeSchedule::uniform(&cfg, mode), &tm);
            let fixed = m.run(&cfg, &t, point);
            let dt = (sched.time_us - fixed.total_time_us).abs();
            assert!(
                dt < 1e-6 * fixed.total_time_us.max(1.0),
                "{mode}: scheduled {} vs fixed {}",
                sched.time_us,
                fixed.total_time_us
            );
            let de = (sched.processor_energy_uj - fixed.processor_energy_uj()).abs();
            assert!(
                de < 1e-6 * fixed.processor_energy_uj().max(1.0),
                "{mode}: energy {} vs {}",
                sched.processor_energy_uj,
                fixed.processor_energy_uj()
            );
        }
    }

    #[test]
    fn mode_switches_are_counted_and_charged() {
        let (cfg, t) = program();
        let m = Machine::paper_default();
        let l = ladder();
        let tm = TransitionModel::with_capacitance_uf(10.0);
        // Alternate: head runs fast, body runs slow => 2 transitions per
        // iteration.
        let h = cfg.block_by_label("head").unwrap();
        let body = cfg.block_by_label("body").unwrap();
        let mut sched = EdgeSchedule::uniform(&cfg, ModeId(2));
        let e_hb = cfg.edge_between(h, body).unwrap();
        let e_bh = cfg.edge_between(body, h).unwrap();
        sched.edge_modes[e_hb.index()] = ModeId(0);
        sched.edge_modes[e_bh.index()] = ModeId(2);
        let r = m.run_scheduled(&cfg, &t, &l, &sched, &tm);
        assert_eq!(r.transitions, 200);
        assert!((r.transition_energy_uj - 200.0 * tm.energy_uj(0.7, 1.65)).abs() < 1e-9);
        assert!(r.transition_time_us > 0.0);

        // With free transitions, same schedule costs no switch overhead.
        let r2 = m.run_scheduled(&cfg, &t, &l, &sched, &TransitionModel::free());
        assert_eq!(r2.transitions, 200);
        assert!(r2.time_us < r.time_us);
        assert!(r2.processor_energy_uj < r.processor_energy_uj);
    }

    #[test]
    fn zero_cost_blocks_still_execute_their_mode_switches() {
        // entry -> mid -> exit where every block is empty: no instructions
        // commit, but the switch on the edge into `mid` must still be
        // performed, counted, and charged.
        let mut b = CfgBuilder::new("empty");
        let e = b.block("entry");
        let mid = b.block("mid");
        let x = b.block("exit");
        b.edge(e, mid);
        b.edge(mid, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        for blk in [cfg.entry(), cfg.block_by_label("mid").unwrap(), cfg.exit()] {
            tb.step(blk, vec![]);
        }
        let t = tb.finish().unwrap();
        let m = Machine::paper_default();
        let l = ladder();
        let tm = TransitionModel::with_capacitance_uf(10.0);
        let mut sched = EdgeSchedule::uniform(&cfg, ModeId(2));
        let mid = cfg.block_by_label("mid").unwrap();
        let e_mid = cfg.edge_between(cfg.entry(), mid).unwrap();
        let mid_x = cfg.edge_between(mid, cfg.exit()).unwrap();
        sched.edge_modes[e_mid.index()] = ModeId(0);
        // Keep the downstream edge at the new mode so the program switches
        // exactly once.
        sched.edge_modes[mid_x.index()] = ModeId(0);
        let r = m.run_scheduled(&cfg, &t, &l, &sched, &tm);
        assert_eq!(r.transitions, 1);
        assert!(
            (r.transition_energy_uj - tm.mode_energy_uj(&l, ModeId(2), ModeId(0))).abs() < 1e-12
        );
        assert!((r.transition_time_us - tm.mode_time_us(&l, ModeId(2), ModeId(0))).abs() < 1e-12);
        // Nothing commits, so the commit-anchored timeline stays at zero —
        // the switch overhead is carried entirely by the transition fields.
        assert_eq!(r.time_us, 0.0);
        assert_eq!(r.processor_energy_uj, r.transition_energy_uj);
    }

    #[test]
    fn self_loop_back_edge_switches_exactly_once() {
        // entry -> loop(self x50) -> exit: the self-loop back edge sets a
        // different mode than the entry edge, so the *first* arrival over
        // the back edge switches and the remaining 49 are silent.
        let mut b = CfgBuilder::new("selfloop");
        let e = b.block("entry");
        let lp = b.block("loop");
        let x = b.block("exit");
        b.push(lp, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1)]));
        b.push(lp, Inst::branch(Reg(1)));
        b.edge(e, lp);
        b.edge(lp, lp);
        b.edge(lp, x);
        let cfg = b.finish(e, x).unwrap();
        let lp = cfg.block_by_label("loop").unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(cfg.entry(), vec![]);
        for _ in 0..50 {
            tb.step(lp, vec![]);
        }
        tb.step(cfg.exit(), vec![]);
        let t = tb.finish().unwrap();
        let m = Machine::paper_default();
        let l = ladder();
        let tm = TransitionModel::with_capacitance_uf(10.0);
        let mut sched = EdgeSchedule::uniform(&cfg, ModeId(2));
        let back = cfg.edge_between(lp, lp).unwrap();
        let exit_edge = cfg.edge_between(lp, cfg.exit()).unwrap();
        sched.edge_modes[back.index()] = ModeId(0);
        // The loop-exit edge stays at the loop's final mode so the only
        // candidate switch point is the back edge itself.
        sched.edge_modes[exit_edge.index()] = ModeId(0);
        let r = m.run_scheduled(&cfg, &t, &l, &sched, &tm);
        assert_eq!(
            r.transitions, 1,
            "a static mode-set on a self-loop must fire once, then be silent"
        );
        assert!(
            (r.transition_energy_uj - tm.mode_energy_uj(&l, ModeId(2), ModeId(0))).abs() < 1e-12
        );
    }

    #[test]
    fn mode_switch_on_a_critical_edge_charges_only_when_taken() {
        // entry branches to {side, exit} and side falls through to exit, so
        // entry->exit is a critical edge (multi-successor source,
        // multi-predecessor target). Its mode-set must fire exactly on the
        // paths that take it.
        let mut b = CfgBuilder::new("critical");
        let e = b.block("entry");
        let side = b.block("side");
        let x = b.block("exit");
        b.push(e, Inst::branch(Reg(1)));
        b.push(side, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1)]));
        b.edge(e, side);
        b.edge(e, x);
        b.edge(side, x);
        let cfg = b.finish(e, x).unwrap();
        let side = cfg.block_by_label("side").unwrap();
        let m = Machine::paper_default();
        let l = ladder();
        let tm = TransitionModel::with_capacitance_uf(10.0);
        let mut sched = EdgeSchedule::uniform(&cfg, ModeId(1));
        let crit = cfg.edge_between(cfg.entry(), cfg.exit()).unwrap();
        sched.edge_modes[crit.index()] = ModeId(0);

        let mut around = TraceBuilder::new(&cfg);
        around.step(cfg.entry(), vec![]);
        around.step(side, vec![]);
        around.step(cfg.exit(), vec![]);
        let around = around.finish().unwrap();
        let r = m.run_scheduled(&cfg, &around, &l, &sched, &tm);
        assert_eq!(r.transitions, 0, "the critical edge was not taken");
        assert_eq!(r.transition_energy_uj, 0.0);

        let mut through = TraceBuilder::new(&cfg);
        through.step(cfg.entry(), vec![]);
        through.step(cfg.exit(), vec![]);
        let through = through.finish().unwrap();
        let r = m.run_scheduled(&cfg, &through, &l, &sched, &tm);
        assert_eq!(r.transitions, 1, "the critical edge was taken");
        assert!(
            (r.transition_energy_uj - tm.mode_energy_uj(&l, ModeId(1), ModeId(0))).abs() < 1e-12
        );
    }

    #[test]
    fn slow_mode_saves_energy_but_costs_time() {
        let (cfg, t) = program();
        let m = Machine::paper_default();
        let l = ladder();
        let tm = TransitionModel::free();
        let fast = m.run_scheduled(&cfg, &t, &l, &EdgeSchedule::uniform(&cfg, ModeId(2)), &tm);
        let slow = m.run_scheduled(&cfg, &t, &l, &EdgeSchedule::uniform(&cfg, ModeId(0)), &tm);
        assert!(slow.time_us > fast.time_us);
        assert!(slow.processor_energy_uj < fast.processor_energy_uj);
    }
}
