use dvs_ir::Opcode;

/// Clock-gating discipline during idle (memory-stall) cycles.
///
/// The paper's analytical model assumes *perfect* gating (assumption 3:
/// "the clock is gated when the processor is idle"), which is what makes
/// memory stalls energy-free and the whole DVS analysis work. The
/// `Ungated` variant keeps the clock tree burning through stalls — an
/// ablation showing how much of the technique's benefit that assumption
/// carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockGating {
    /// Idle cycles cost nothing (the paper's assumption).
    #[default]
    Perfect,
    /// The clock tree charges every cycle, busy or not.
    Ungated,
}

/// Wattch-style activity-based energy model.
///
/// Every microarchitectural event charges an *effective switched
/// capacitance* (in nF); at an operating point with supply voltage `V` the
/// energy of an event is `C · V²` (nanojoules for nF and volts, reported in
/// µJ). This reproduces the two properties of Wattch the paper relies on:
///
/// * energy scales with `V²` across DVS modes while event counts stay
///   fixed, so the maximum DVS gain for a fixed cycle count is the `V²`
///   ratio the paper quotes (0.7²/1.3² ≈ 0.29);
/// * idle (memory-stall) cycles cost nothing — perfect clock gating, the
///   paper's assumption 3.
///
/// Off-chip DRAM energy is charged per access at a *fixed* energy
/// independent of the CPU voltage (the paper treats memory energy as a
/// constant and excludes it from the optimization); the simulator reports
/// it separately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Front end (fetch + decode + rename) per instruction, nF.
    pub frontend_nf: f64,
    /// Issue window wakeup/select per issued instruction, nF.
    pub window_nf: f64,
    /// Register file, per operand read or write, nF.
    pub regfile_nf: f64,
    /// Branch predictor + BTB per branch, nF.
    pub bpred_nf: f64,
    /// Clock tree per instruction slot (amortized per-busy-cycle cost), nF.
    pub clock_nf: f64,
    /// Simple integer ALU op, nF.
    pub int_alu_nf: f64,
    /// Integer multiply, nF.
    pub int_mul_nf: f64,
    /// Integer divide, nF.
    pub int_div_nf: f64,
    /// FP add, nF.
    pub fp_add_nf: f64,
    /// FP multiply, nF.
    pub fp_mul_nf: f64,
    /// FP divide/sqrt, nF.
    pub fp_div_nf: f64,
    /// L1 (I or D) access, nF.
    pub l1_nf: f64,
    /// L2 access, nF.
    pub l2_nf: f64,
    /// Off-chip DRAM access energy in µJ per access, voltage-independent.
    pub dram_uj_per_access: f64,
    /// Idle-cycle clock discipline.
    pub gating: ClockGating,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            frontend_nf: 0.15,
            window_nf: 0.10,
            regfile_nf: 0.03,
            bpred_nf: 0.04,
            clock_nf: 0.22,
            int_alu_nf: 0.08,
            int_mul_nf: 0.30,
            int_div_nf: 0.60,
            fp_add_nf: 0.25,
            fp_mul_nf: 0.35,
            fp_div_nf: 0.70,
            l1_nf: 0.12,
            l2_nf: 0.40,
            dram_uj_per_access: 0.01,
            gating: ClockGating::Perfect,
        }
    }
}

impl EnergyModel {
    /// Switched capacitance of the functional-unit operation for `op`.
    #[must_use]
    pub fn fu_nf(&self, op: Opcode) -> f64 {
        match op {
            Opcode::IntAlu | Opcode::Branch => self.int_alu_nf,
            Opcode::IntMul => self.int_mul_nf,
            Opcode::IntDiv => self.int_div_nf,
            Opcode::FpAdd => self.fp_add_nf,
            Opcode::FpMul => self.fp_mul_nf,
            Opcode::FpDiv => self.fp_div_nf,
            // Loads/stores use an AGU (ALU-class); cache energy is separate.
            Opcode::Load | Opcode::Store => self.int_alu_nf,
            Opcode::Nop => 0.0,
        }
    }

    /// Converts accumulated capacitance (nF) to energy (µJ) at supply
    /// voltage `v`.
    #[must_use]
    pub fn cap_to_uj(cap_nf: f64, v: f64) -> f64 {
        cap_nf * v * v * 1e-3
    }
}

/// Accumulated switched capacitance by category, convertible to µJ at a
/// given supply voltage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Front end, window, regfile, clock (core overheads), nF.
    pub core_nf: f64,
    /// Functional units, nF.
    pub fu_nf: f64,
    /// Caches (L1 + L2), nF.
    pub cache_nf: f64,
    /// Branch prediction, nF.
    pub bpred_nf: f64,
    /// DRAM energy, µJ (voltage-independent, kept separate).
    pub dram_uj: f64,
}

impl EnergyBreakdown {
    /// Total on-chip switched capacitance, nF.
    #[must_use]
    pub fn total_nf(&self) -> f64 {
        self.core_nf + self.fu_nf + self.cache_nf + self.bpred_nf
    }

    /// On-chip (processor) energy at supply voltage `v`, in µJ. DRAM energy
    /// is *not* included, matching the paper's accounting.
    #[must_use]
    pub fn processor_uj(&self, v: f64) -> f64 {
        EnergyModel::cap_to_uj(self.total_nf(), v)
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.core_nf += other.core_nf;
        self.fu_nf += other.fu_nf;
        self.cache_nf += other.cache_nf;
        self.bpred_nf += other.bpred_nf;
        self.dram_uj += other.dram_uj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_squared_scaling() {
        let e = 10.0; // nF
        let at07 = EnergyModel::cap_to_uj(e, 0.7);
        let at13 = EnergyModel::cap_to_uj(e, 1.3);
        assert!((at07 / at13 - (0.7f64 * 0.7) / (1.3 * 1.3)).abs() < 1e-12);
        // The paper's headline ratio: 0.29.
        assert!((at07 / at13 - 0.29).abs() < 0.01);
    }

    #[test]
    fn fu_energies_ordered_by_complexity() {
        let m = EnergyModel::default();
        assert!(m.fu_nf(Opcode::IntAlu) < m.fu_nf(Opcode::IntMul));
        assert!(m.fu_nf(Opcode::IntMul) < m.fu_nf(Opcode::IntDiv));
        assert!(m.fu_nf(Opcode::FpAdd) < m.fu_nf(Opcode::FpMul));
        assert!(m.fu_nf(Opcode::FpMul) < m.fu_nf(Opcode::FpDiv));
        assert_eq!(m.fu_nf(Opcode::Nop), 0.0);
    }

    #[test]
    fn loads_and_stores_charge_the_agu_class_not_the_caches() {
        // Cache energy is accounted per access by the hierarchy; the
        // per-instruction functional-unit charge for memory ops must be the
        // ALU/AGU class, or cache energy would be double-counted.
        let m = EnergyModel::default();
        assert_eq!(m.fu_nf(Opcode::Load), m.fu_nf(Opcode::IntAlu));
        assert_eq!(m.fu_nf(Opcode::Store), m.fu_nf(Opcode::IntAlu));
        assert_eq!(m.fu_nf(Opcode::Branch), m.fu_nf(Opcode::IntAlu));
        assert!(m.fu_nf(Opcode::Load) < m.l1_nf + m.l2_nf);
    }

    #[test]
    fn zero_capacitance_and_zero_voltage_cost_nothing() {
        assert_eq!(EnergyModel::cap_to_uj(0.0, 1.65), 0.0);
        assert_eq!(EnergyModel::cap_to_uj(10.0, 0.0), 0.0);
        let empty = EnergyBreakdown::default();
        assert_eq!(empty.total_nf(), 0.0);
        assert_eq!(empty.processor_uj(1.65), 0.0);
    }

    #[test]
    fn gating_defaults_to_the_papers_perfect_assumption() {
        assert_eq!(EnergyModel::default().gating, ClockGating::Perfect);
        assert_eq!(ClockGating::default(), ClockGating::Perfect);
        assert_ne!(ClockGating::Perfect, ClockGating::Ungated);
    }

    #[test]
    fn breakdown_totals_and_merge() {
        let mut a = EnergyBreakdown {
            core_nf: 1.0,
            fu_nf: 2.0,
            cache_nf: 3.0,
            bpred_nf: 4.0,
            dram_uj: 0.5,
        };
        assert_eq!(a.total_nf(), 10.0);
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_nf(), 20.0);
        assert_eq!(a.dram_uj, 1.0);
        // DRAM not in processor energy.
        let p = a.processor_uj(1.0);
        assert!((p - 0.02).abs() < 1e-12);
    }
}
