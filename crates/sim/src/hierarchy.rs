use crate::cache::TlbSim;
use crate::{AccessOutcome, CacheSim, CacheStats, SimConfig};

/// Where a data access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLevel {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Missed both on-chip levels; served by asynchronous main memory.
    Memory,
}

impl DataLevel {
    /// Whether the access left the chip.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, DataLevel::Memory)
    }
}

/// The full memory hierarchy: split L1s, unified L2, I/D TLBs, and an
/// asynchronous DRAM behind them.
///
/// On-chip latencies are returned in **cycles** (they scale with the CPU
/// clock); main-memory service time is **absolute** and exposed separately,
/// because the whole premise of compile-time DVS is that this component of
/// execution time does not stretch when the clock slows down.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1d: CacheSim,
    l1i: CacheSim,
    l2: CacheSim,
    itlb: TlbSim,
    dtlb: TlbSim,
    l1_latency: u32,
    l2_latency: u32,
    tlb_penalty: u32,
    mem_latency_us: f64,
    next_line_prefetch: bool,
    line_bytes: u64,
}

impl MemoryHierarchy {
    /// Builds a cold hierarchy from the machine configuration.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        MemoryHierarchy {
            l1d: CacheSim::new(config.l1d),
            l1i: CacheSim::new(config.l1i),
            l2: CacheSim::new(config.l2),
            itlb: TlbSim::new(config.tlb_entries, config.page_bytes),
            dtlb: TlbSim::new(config.tlb_entries, config.page_bytes),
            l1_latency: config.l1_latency,
            l2_latency: config.l2_latency,
            tlb_penalty: config.tlb_miss_penalty,
            mem_latency_us: config.mem_latency_us,
            next_line_prefetch: config.next_line_prefetch,
            line_bytes: config.l1d.block_bytes,
        }
    }

    /// Performs a data access. Returns the satisfying level and the
    /// synchronous (on-chip) latency in cycles; for [`DataLevel::Memory`]
    /// the caller must additionally wait [`MemoryHierarchy::mem_latency_us`]
    /// of wall-clock time.
    pub fn data_access(&mut self, addr: u64) -> (DataLevel, u32) {
        let mut cycles = 0;
        if self.dtlb.access(addr) == AccessOutcome::Miss {
            cycles += self.tlb_penalty;
        }
        if self.l1d.access(addr) == AccessOutcome::Hit {
            return (DataLevel::L1, cycles + self.l1_latency);
        }
        if self.next_line_prefetch {
            // Idealized tagged prefetch: the following line is filled
            // alongside the demand miss.
            let _ = self.l1d.access(addr + self.line_bytes);
            let _ = self.l2.access(addr + self.line_bytes);
        }
        if self.l2.access(addr) == AccessOutcome::Hit {
            return (DataLevel::L2, cycles + self.l1_latency + self.l2_latency);
        }
        (
            DataLevel::Memory,
            cycles + self.l1_latency + self.l2_latency,
        )
    }

    /// Performs an instruction fetch access for the line holding `addr`.
    /// Same contract as [`MemoryHierarchy::data_access`].
    pub fn inst_access(&mut self, addr: u64) -> (DataLevel, u32) {
        let mut cycles = 0;
        if self.itlb.access(addr) == AccessOutcome::Miss {
            cycles += self.tlb_penalty;
        }
        if self.l1i.access(addr) == AccessOutcome::Hit {
            return (DataLevel::L1, cycles + self.l1_latency);
        }
        if self.l2.access(addr) == AccessOutcome::Hit {
            return (DataLevel::L2, cycles + self.l1_latency + self.l2_latency);
        }
        (
            DataLevel::Memory,
            cycles + self.l1_latency + self.l2_latency,
        )
    }

    /// Absolute main-memory service time in µs.
    #[must_use]
    pub fn mem_latency_us(&self) -> f64 {
        self.mem_latency_us
    }

    /// L1 data-cache statistics.
    #[must_use]
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// L1 instruction-cache statistics.
    #[must_use]
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// Unified L2 statistics.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MemoryHierarchy {
        MemoryHierarchy::new(&SimConfig::tiny_for_tests())
    }

    #[test]
    fn cold_access_goes_to_memory_then_hits_l1() {
        let mut h = tiny();
        let (lvl, _) = h.data_access(0x4000);
        assert_eq!(lvl, DataLevel::Memory);
        let (lvl, cyc) = h.data_access(0x4000);
        assert_eq!(lvl, DataLevel::L1);
        assert_eq!(cyc, 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = tiny();
        // Fill well past L1 (1 KB) but within L2 (8 KB).
        for i in 0..64u64 {
            h.data_access(i * 32);
        }
        // Re-walk: L1 (32 lines, 2-way) can't hold all 64 lines, so early
        // lines come from L2, not memory.
        let (lvl, cyc) = h.data_access(0);
        assert_eq!(lvl, DataLevel::L2);
        assert_eq!(cyc, 1 + 16);
        assert_eq!(h.l2_stats().misses, 64);
    }

    #[test]
    fn inst_and_data_paths_are_split_but_share_l2() {
        let mut h = tiny();
        let (lvl, _) = h.inst_access(0x8000);
        assert_eq!(lvl, DataLevel::Memory);
        // Same line via data path: L1D misses but L2 has it.
        let (lvl, _) = h.data_access(0x8000);
        assert_eq!(lvl, DataLevel::L2);
    }

    #[test]
    fn tlb_penalty_applies_on_first_touch_of_page() {
        let mut h = tiny();
        let cfg = SimConfig::tiny_for_tests();
        let (_, cyc_first) = h.data_access(0x10_0000);
        // First touch pays TLB penalty on top of cache latency.
        assert!(cyc_first >= cfg.tlb_miss_penalty);
        let (_, cyc_same_page) = h.data_access(0x10_0040);
        assert!(cyc_same_page < cfg.tlb_miss_penalty);
    }

    #[test]
    fn next_line_prefetch_converts_streaming_misses_to_hits() {
        let mut cfg = SimConfig::tiny_for_tests();
        cfg.next_line_prefetch = true;
        let mut with = MemoryHierarchy::new(&cfg);
        let mut without = MemoryHierarchy::new(&SimConfig::tiny_for_tests());
        // Sequential line-by-line stream.
        let mut hits_with = 0;
        let mut hits_without = 0;
        for i in 0..64u64 {
            if with.data_access(0x9000 + i * 32).0 == DataLevel::L1 {
                hits_with += 1;
            }
            if without.data_access(0x9000 + i * 32).0 == DataLevel::L1 {
                hits_without += 1;
            }
        }
        assert_eq!(hits_without, 0, "cold stream never hits without prefetch");
        assert!(
            hits_with >= 30,
            "prefetch should catch the stream: {hits_with}"
        );
    }

    #[test]
    fn memory_latency_is_absolute() {
        let h = tiny();
        assert!((h.mem_latency_us() - 0.08).abs() < 1e-12);
    }
}
