//! Cycle-level CPU simulation substrate for the compile-time DVS study.
//!
//! The paper gathers its profiles with Wattch (a power-model layer over
//! SimpleScalar's out-of-order simulator). This crate rebuilds that
//! substrate from scratch, at the fidelity the paper's experiments actually
//! consume:
//!
//! * [`CacheSim`]/[`MemoryHierarchy`]: set-associative LRU caches (L1 I/D,
//!   unified L2, I/D TLBs) in the paper's Table 2 configuration, backed by
//!   an **asynchronous main memory** whose service time is absolute
//!   (µs) rather than measured in CPU cycles — the property all of the
//!   paper's analysis rests on;
//! * [`BranchPredictor`]: the combined bimodal + two-level predictor with
//!   chooser and BTB from Table 2;
//! * [`Machine`]: a dataflow out-of-order timing model (RUU/LSQ windows,
//!   4-wide fetch/issue/commit, per-class functional units) that executes a
//!   [`Trace`] at one [`dvs_vf::OperatingPoint`] and produces per-block
//!   time/energy, using a Wattch-style activity-based `C·V²` energy model
//!   with perfect clock gating on memory stalls;
//! * [`ModeProfiler`]: runs the machine once per DVS mode to assemble the
//!   [`dvs_ir::Profile`] the MILP consumes, and extracts the analytical
//!   model's program parameters (`Noverlap`, `Ndependent`, `Ncache`,
//!   `tinvariant`);
//! * [`ScheduledRun`]: re-executes a trace under a per-edge DVS schedule,
//!   charging regulator transition costs, to *validate* MILP output against
//!   the simulator rather than against the MILP's own objective.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod dvs_exec;
mod energy;
mod hierarchy;
mod machine;
mod predictor;
mod profiler;
mod trace;

pub use cache::{AccessOutcome, CacheConfig, CacheSim, CacheStats};
pub use config::SimConfig;
pub use dvs_exec::{EdgeSchedule, ScheduledRun};
pub use energy::{ClockGating, EnergyBreakdown, EnergyModel};
pub use hierarchy::{DataLevel, MemoryHierarchy};
pub use machine::{BlockStats, Machine, RunStats};
pub use predictor::{BranchPredictor, PredictorConfig};
pub use profiler::{ModeProfiler, ProgramParams};
pub use trace::{DynBlock, Trace, TraceBuilder};
