use crate::cache::CacheStats;
use crate::{
    BranchPredictor, DataLevel, EnergyBreakdown, EnergyModel, MemoryHierarchy, SimConfig, Trace,
};
use dvs_ir::{Cfg, Opcode};
use dvs_vf::OperatingPoint;

/// Pipeline front-end depth in cycles (fetch → decode → rename).
const FRONTEND_DEPTH: f64 = 3.0;
/// Bytes per instruction in the synthetic instruction encoding.
const INST_BYTES: u64 = 4;
/// Code bytes reserved per basic block (blocks get disjoint PC ranges).
/// Blocks longer than `BLOCK_STRIDE / INST_BYTES` (256) instructions wrap
/// within their own range: their tail reuses the block's earlier I-cache
/// lines, which slightly understates I-footprint for outsized blocks but
/// never aliases *other* blocks' code.
const BLOCK_STRIDE: u64 = 1024;

/// Per-basic-block accumulation over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockStats {
    /// Dynamic invocations of the block.
    pub invocations: u64,
    /// Total wall-clock time attributed to the block, µs.
    pub time_us: f64,
    /// Total switched capacitance attributed to the block, nF.
    pub cap_nf: f64,
}

/// Results of executing one trace at one operating point.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// The `(V, f)` the run used.
    pub point: OperatingPoint,
    /// Wall-clock execution time, µs.
    pub total_time_us: f64,
    /// Execution time in CPU cycles at this point's frequency.
    pub total_cycles: f64,
    /// Committed instructions.
    pub committed_insts: u64,
    /// Energy accumulated across the run.
    pub energy: EnergyBreakdown,
    /// Per-block accumulations, indexed by block id.
    pub blocks: Vec<BlockStats>,
    /// Busy cycles that overlapped an outstanding main-memory miss
    /// (the analytical model's `Noverlap` contribution).
    pub overlap_cycles: f64,
    /// Busy cycles with no outstanding miss (`Ndependent` contribution).
    pub dependent_cycles: f64,
    /// Cycles stalled with a miss outstanding; in absolute time this is the
    /// analytical model's `tinvariant`.
    pub stall_cycles: f64,
    /// Cycles spent in L1/L2 hit latencies of data accesses (`Ncache`).
    pub cache_hit_cycles: f64,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Branch direction mispredictions.
    pub mispredicts: u64,
    /// Off-chip DRAM accesses.
    pub dram_accesses: u64,
}

impl RunStats {
    /// On-chip processor energy for the whole run, µJ.
    #[must_use]
    pub fn processor_energy_uj(&self) -> f64 {
        self.energy.processor_uj(self.point.voltage)
    }

    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.total_cycles > 0.0 {
            self.committed_insts as f64 / self.total_cycles
        } else {
            0.0
        }
    }

    /// Feeds this run's aggregates into the global `dvs-obs` sink (one call
    /// per simulated run; a no-op unless collection is enabled).
    pub(crate) fn record_metrics(&self) {
        if !dvs_obs::enabled() {
            return;
        }
        dvs_obs::counter("sim.runs", 1);
        dvs_obs::counter("sim.cycles", self.total_cycles as u64);
        dvs_obs::counter("sim.insts", self.committed_insts);
        dvs_obs::counter("sim.l1d_misses", self.l1d.misses);
        dvs_obs::counter("sim.l1i_misses", self.l1i.misses);
        dvs_obs::counter("sim.l2_misses", self.l2.misses);
        dvs_obs::counter("sim.dram_accesses", self.dram_accesses);
        dvs_obs::counter("sim.mispredicts", self.mispredicts);
        dvs_obs::histogram("sim.run_ipc", self.ipc());
    }
}

impl std::fmt::Display for RunStats {
    /// A compact one-line summary, sim-outorder style.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.0} insts, {:.0} cycles (IPC {:.2}) in {:.1} µs @ {}; \
             E = {:.2} µJ; L1D miss {:.1}%, L2 miss {:.1}%, {} DRAM, {} mispredicts",
            self.committed_insts as f64,
            self.total_cycles,
            self.ipc(),
            self.total_time_us,
            self.point,
            self.processor_energy_uj(),
            100.0 * self.l1d.miss_rate(),
            100.0 * self.l2.miss_rate(),
            self.dram_accesses,
            self.mispredicts
        )
    }
}

/// The out-of-order machine: a dataflow timing model with the paper's
/// Table 2 resources.
///
/// Rather than stepping every cycle, each dynamic instruction's fetch,
/// dispatch, issue, completion and commit times are computed from its
/// dependences and from resource scoreboards (window and LSQ occupancy,
/// per-class functional units, fetch bandwidth, a single-channel
/// asynchronous memory). This captures the behaviours the paper's study
/// depends on — memory/computation overlap, frequency-invariant miss
/// service time, clock-gated stalls — at a cost of O(1) work per
/// instruction.
#[derive(Debug, Clone)]
pub struct Machine {
    config: SimConfig,
    energy: EnergyModel,
}

impl Machine {
    /// Creates a machine with the given configuration and energy model.
    #[must_use]
    pub fn new(config: SimConfig, energy: EnergyModel) -> Self {
        Machine { config, energy }
    }

    /// A machine with the paper's default configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Machine::new(SimConfig::default(), EnergyModel::default())
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The energy model in use.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Executes `trace` over `cfg` at `point`, with cold caches and
    /// predictor.
    ///
    /// # Panics
    ///
    /// Panics if the trace references blocks outside `cfg`.
    #[must_use]
    pub fn run(&self, cfg: &Cfg, trace: &Trace, point: OperatingPoint) -> RunStats {
        let _span = dvs_obs::span!("sim.run");
        let cfgm = &self.config;
        let em = &self.energy;
        let f = point.frequency_mhz;
        let mem_lat_cycles = cfgm.mem_latency_us * f;

        let mut hier = MemoryHierarchy::new(cfgm);
        let mut pred = BranchPredictor::new(cfgm.predictor);

        let mut reg_ready = [0.0f64; 64];
        let fu_pools: [usize; 7] = [
            cfgm.int_alus, // IntAlu/Branch/agen
            cfgm.int_mult, // IntMul
            cfgm.int_mult, // IntDiv shares the mult/div unit
            cfgm.fp_adders,
            cfgm.fp_mult,
            cfgm.fp_div,
            1, // Nop pseudo-pool
        ];
        let mut fu_free: Vec<Vec<f64>> = fu_pools.iter().map(|&n| vec![0.0; n.max(1)]).collect();
        let mut window_ring = vec![0.0f64; cfgm.ruu_size];
        let mut lsq_ring = vec![0.0f64; cfgm.lsq_size];
        let mut commit_ring = vec![0.0f64; cfgm.commit_width];

        let mut fetch_cycle = 0.0f64;
        let mut fetch_slots = 0usize;
        let mut mem_free = 0.0f64;
        let mut prev_commit = 0.0f64;
        let mut inst_index = 0usize;
        let mut mem_index = 0usize;

        let mut busy = BusyBitmap::new();
        let mut mem_active = BusyBitmap::new();
        let mut miss_intervals: Vec<(f64, f64)> = Vec::new();
        let mut cache_hit_cycles = 0.0f64;
        // (issue cycle, latency) of every computation (non-memory)
        // instruction, classified against memory activity after the run —
        // deferring the lookup makes the classification independent of
        // program order vs issue order.
        let mut compute_events: Vec<(f64, f64)> = Vec::new();

        let mut blocks = vec![BlockStats::default(); cfg.num_blocks()];
        let mut energy = EnergyBreakdown::default();
        let mut dram_accesses = 0u64;
        let mut committed = 0u64;
        let mut pending_redirect = 0.0f64;
        let mut block_mark = 0.0f64;

        for dyn_block in trace.blocks() {
            let bb = cfg.block(dyn_block.block);
            let base_pc = dyn_block.block.index() as u64 * BLOCK_STRIDE;
            fetch_cycle = fetch_cycle.max(pending_redirect);
            if pending_redirect > 0.0 {
                fetch_slots = 0;
                pending_redirect = 0.0;
            }

            // Instruction-side cache behaviour: one access per 32B line the
            // block touches.
            let line_bytes = cfgm.l1i.block_bytes;
            let mut next_line_pc = base_pc;
            let mut block_cap = 0.0f64;
            let mut addr_ix = 0usize;

            for (ii, inst) in bb.insts.iter().enumerate() {
                let pc = base_pc + (ii as u64 * INST_BYTES) % BLOCK_STRIDE;
                if pc >= next_line_pc {
                    let (lvl, cyc) = hier.inst_access(pc);
                    energy.cache_nf += em.l1_nf;
                    block_cap += em.l1_nf;
                    match lvl {
                        DataLevel::L1 => {}
                        DataLevel::L2 => {
                            energy.cache_nf += em.l2_nf;
                            block_cap += em.l2_nf;
                            fetch_cycle += f64::from(cyc - cfgm.l1_latency);
                        }
                        DataLevel::Memory => {
                            energy.cache_nf += em.l2_nf;
                            energy.dram_uj += em.dram_uj_per_access;
                            dram_accesses += 1;
                            block_cap += em.l2_nf;
                            let ready = fetch_cycle + f64::from(cyc);
                            let start = ready.max(mem_free);
                            let end = start + mem_lat_cycles;
                            mem_free = end;
                            miss_intervals.push((start, end));
                            mem_active.mark_range(ready, end);
                            fetch_cycle = end;
                        }
                    }
                    next_line_pc = (pc / line_bytes + 1) * line_bytes;
                }

                // Fetch bandwidth.
                if fetch_slots >= cfgm.fetch_width {
                    fetch_cycle += 1.0;
                    fetch_slots = 0;
                }
                let fetch_time = fetch_cycle;
                fetch_slots += 1;

                let dispatch_ready = fetch_time + FRONTEND_DEPTH;
                let window_gate = window_ring[inst_index % cfgm.ruu_size];

                // Source readiness.
                let mut src_ready = 0.0f64;
                for s in &inst.srcs {
                    if !s.is_zero() {
                        src_ready = src_ready.max(reg_ready[s.0 as usize % 64]);
                    }
                }

                // Functional unit.
                let pool_ix = match inst.opcode {
                    Opcode::IntAlu | Opcode::Branch | Opcode::Load | Opcode::Store => 0,
                    Opcode::IntMul => 1,
                    Opcode::IntDiv => 2,
                    Opcode::FpAdd => 3,
                    Opcode::FpMul => 4,
                    Opcode::FpDiv => 5,
                    Opcode::Nop => 6,
                };
                let pool = &mut fu_free[pool_ix];
                let (unit_ix, unit_free) = pool
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
                    .expect("pool non-empty");

                let mut issue = dispatch_ready
                    .max(window_gate)
                    .max(src_ready)
                    .max(unit_free);
                let is_mem = inst.opcode.is_mem();
                if is_mem {
                    issue = issue.max(lsq_ring[mem_index % cfgm.lsq_size]);
                }

                // Unit occupancy: divides are unpipelined.
                let occupancy = match inst.opcode {
                    Opcode::IntDiv | Opcode::FpDiv => f64::from(inst.opcode.base_latency()),
                    _ => 1.0,
                };
                pool[unit_ix] = issue + occupancy;

                // Completion.
                let mut complete = issue + f64::from(inst.opcode.base_latency());
                if is_mem {
                    let addr = dyn_block.addrs[addr_ix];
                    addr_ix += 1;
                    let (lvl, cyc) = hier.data_access(addr);
                    energy.cache_nf += em.l1_nf;
                    block_cap += em.l1_nf;
                    match lvl {
                        DataLevel::L1 | DataLevel::L2 => {
                            if lvl == DataLevel::L2 {
                                energy.cache_nf += em.l2_nf;
                                block_cap += em.l2_nf;
                            }
                            cache_hit_cycles += f64::from(cyc);
                            mem_active.mark_range(issue, issue + 1.0 + f64::from(cyc));
                            if inst.opcode == Opcode::Load {
                                complete = issue + 1.0 + f64::from(cyc);
                            }
                        }
                        DataLevel::Memory => {
                            energy.cache_nf += em.l2_nf;
                            energy.dram_uj += em.dram_uj_per_access;
                            dram_accesses += 1;
                            block_cap += em.l2_nf;
                            let ready = issue + 1.0 + f64::from(cyc);
                            let start = ready.max(mem_free);
                            let end = start + mem_lat_cycles;
                            mem_free = end;
                            miss_intervals.push((start, end));
                            mem_active.mark_range(issue, end);
                            if inst.opcode == Opcode::Load {
                                complete = end;
                            }
                            // Store misses retire without waiting for DRAM.
                        }
                    }
                }

                // Branch prediction.
                if inst.opcode.is_branch() {
                    energy.bpred_nf += em.bpred_nf;
                    block_cap += em.bpred_nf;
                    let target_pc = base_pc + BLOCK_STRIDE; // proxy target id
                    let correct = pred.predict_and_update(
                        pc,
                        dyn_block.taken,
                        if dyn_block.taken { target_pc } else { 0 },
                    );
                    if !correct {
                        pending_redirect =
                            pending_redirect.max(complete + f64::from(cfgm.mispredict_penalty));
                    }
                }

                // In-order commit.
                let commit = (complete + 1.0)
                    .max(prev_commit)
                    .max(commit_ring[inst_index % cfgm.commit_width] + 1.0);
                prev_commit = commit;
                commit_ring[inst_index % cfgm.commit_width] = commit;
                window_ring[inst_index % cfgm.ruu_size] = commit;
                if is_mem {
                    lsq_ring[mem_index % cfgm.lsq_size] = commit;
                    mem_index += 1;
                }
                if inst.writes_reg() {
                    reg_ready[inst.dest.0 as usize % 64] = complete;
                }

                busy.mark(issue);
                if !is_mem && inst.opcode != Opcode::Nop {
                    compute_events.push((issue, f64::from(inst.opcode.base_latency())));
                }
                committed += 1;
                inst_index += 1;

                // Per-instruction energy.
                let reads = inst.srcs.iter().filter(|s| !s.is_zero()).count() as f64;
                let writes = if inst.writes_reg() { 1.0 } else { 0.0 };
                let cap = em.frontend_nf
                    + em.window_nf
                    + em.clock_nf
                    + em.regfile_nf * (reads + writes)
                    + em.fu_nf(inst.opcode);
                energy.core_nf +=
                    em.frontend_nf + em.window_nf + em.clock_nf + em.regfile_nf * (reads + writes);
                energy.fu_nf += em.fu_nf(inst.opcode);
                block_cap += cap;
            }

            // Attribute elapsed time and energy to this block invocation.
            let bstat = &mut blocks[dyn_block.block.index()];
            bstat.invocations += 1;
            bstat.time_us += (prev_commit - block_mark).max(0.0) / f;
            bstat.cap_nf += block_cap;
            block_mark = prev_commit;
        }

        let total_cycles = prev_commit;
        // Stall time: idle cycles during off-chip miss service (this is the
        // absolute-time component, tinvariant).
        let (_, stall) = busy.classify(&miss_intervals, total_cycles);
        // The paper's Noverlap/Ndependent count *execution cycles of
        // computation operations*: each compute instruction contributes its
        // latency, classified by whether a memory operation (hit or miss)
        // was in flight when it issued.
        let mut overlap = 0.0;
        let mut dependent = 0.0;
        for &(issue, lat) in &compute_events {
            if mem_active.get(issue.max(0.0) as usize) {
                overlap += lat;
            } else {
                dependent += lat;
            }
        }
        // Without perfect clock gating, every idle cycle still drives the
        // clock tree. Charged globally (not attributed to blocks): it is a
        // property of the gaps *between* work.
        if em.gating == crate::ClockGating::Ungated {
            let idle = (total_cycles - busy.count() as f64).max(0.0);
            energy.core_nf += idle * em.clock_nf;
        }

        let stats = RunStats {
            point,
            total_time_us: total_cycles / f,
            total_cycles,
            committed_insts: committed,
            energy,
            blocks,
            overlap_cycles: overlap,
            dependent_cycles: dependent,
            stall_cycles: stall,
            cache_hit_cycles,
            l1d: hier.l1d_stats(),
            l1i: hier.l1i_stats(),
            l2: hier.l2_stats(),
            mispredicts: pred.stats().mispredicts,
            dram_accesses,
        };
        stats.record_metrics();
        stats
    }
}

/// Grow-on-demand bitmap of cycles in which at least one instruction
/// issued.
struct BusyBitmap {
    words: Vec<u64>,
}

impl BusyBitmap {
    fn new() -> Self {
        BusyBitmap { words: Vec::new() }
    }

    fn mark(&mut self, cycle: f64) {
        let c = cycle.max(0.0) as usize;
        let w = c / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (c % 64);
    }

    /// Marks every cycle in `[start, end)`.
    fn mark_range(&mut self, start: f64, end: f64) {
        let s = start.max(0.0) as usize;
        let e = end.max(0.0) as usize;
        if e <= s {
            return;
        }
        let we = e / 64;
        if we >= self.words.len() {
            self.words.resize(we + 1, 0);
        }
        let (ws, wend) = (s / 64, (e - 1) / 64);
        if ws == wend {
            let mask = (!0u64 << (s % 64)) & (!0u64 >> (63 - (e - 1) % 64));
            self.words[ws] |= mask;
        } else {
            self.words[ws] |= !0u64 << (s % 64);
            for w in (ws + 1)..wend {
                self.words[w] = !0;
            }
            self.words[wend] |= !0u64 >> (63 - (e - 1) % 64);
        }
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    fn get(&self, c: usize) -> bool {
        self.words
            .get(c / 64)
            .is_some_and(|w| w & (1 << (c % 64)) != 0)
    }

    /// Over the (disjoint, sorted) miss-service intervals, counts busy
    /// cycles (overlap) and idle cycles (stall).
    fn classify(&self, intervals: &[(f64, f64)], total_cycles: f64) -> (f64, f64) {
        let mut overlap = 0.0;
        let mut stall = 0.0;
        for &(s, e) in intervals {
            let s = s.max(0.0) as usize;
            let e = (e.min(total_cycles).max(0.0)) as usize;
            for c in s..e {
                if self.get(c) {
                    overlap += 1.0;
                } else {
                    stall += 1.0;
                }
            }
        }
        (overlap, stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;
    use dvs_ir::{CfgBuilder, Inst, MemWidth, Opcode, Reg};
    use dvs_vf::OperatingPoint;

    /// A looped compute program: entry -> body(32 insts) x iters -> exit.
    /// Looping amortizes cold-start I-cache misses, which would otherwise
    /// dominate short traces.
    fn compute_loop(iters: usize, chained: bool) -> (Cfg, Trace) {
        let mut b = CfgBuilder::new("line");
        let e = b.block("entry");
        let m = b.block("body");
        let x = b.block("exit");
        for i in 0..32 {
            if chained {
                b.push(m, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1)]));
            } else {
                let d = Reg((1 + i % 30) as u8);
                b.push(m, Inst::alu(Opcode::IntAlu, d, &[Reg(0)]));
            }
        }
        b.edge(e, m);
        b.edge(m, m);
        b.edge(m, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        for _ in 0..iters {
            tb.step(m, vec![]);
        }
        tb.step(x, vec![]);
        let t = tb.finish().unwrap();
        (cfg, t)
    }

    fn fast() -> OperatingPoint {
        OperatingPoint::new(1.65, 800.0)
    }

    fn slow() -> OperatingPoint {
        OperatingPoint::new(0.7, 200.0)
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let (cfg, t) = compute_loop(200, false);
        let m = Machine::paper_default();
        let s = m.run(&cfg, &t, fast());
        assert_eq!(s.committed_insts, 200 * 32);
        // 4-wide machine, no dependences: IPC should approach 4.
        assert!(s.ipc() > 2.5, "ipc = {}", s.ipc());
    }

    #[test]
    fn dependent_chain_serializes() {
        // r1 <- r1 chains: IPC ~ 1, far slower than the independent mix.
        let (cfg, t) = compute_loop(200, true);
        let s = Machine::paper_default().run(&cfg, &t, fast());
        assert!(s.ipc() < 1.2, "ipc = {}", s.ipc());
        let (cfg2, t2) = compute_loop(200, false);
        let s2 = Machine::paper_default().run(&cfg2, &t2, fast());
        assert!(
            s.total_cycles > 1.8 * s2.total_cycles,
            "chain {} vs parallel {}",
            s.total_cycles,
            s2.total_cycles
        );
    }

    #[test]
    fn compute_time_scales_inversely_with_frequency() {
        let (cfg, t) = compute_loop(500, false);
        let m = Machine::paper_default();
        let hi = m.run(&cfg, &t, fast());
        let lo = m.run(&cfg, &t, slow());
        // Pure compute: cycle counts agree up to cold-start I-misses (whose
        // in-cycle cost depends on frequency), and wall-clock time scales by
        // the 4x frequency ratio.
        let cyc_ratio = hi.total_cycles / lo.total_cycles;
        assert!((cyc_ratio - 1.0).abs() < 0.05, "cycle ratio = {cyc_ratio}");
        let ratio = lo.total_time_us / hi.total_time_us;
        assert!((ratio - 4.0).abs() < 0.2, "time ratio = {ratio}");
    }

    /// Program with loads streaming through a working set far larger than
    /// L2, so most loads go to memory.
    fn memory_bound(n_loads: usize, stride: u64) -> (Cfg, Trace) {
        let mut b = CfgBuilder::new("membound");
        let e = b.block("entry");
        let body = b.block("body");
        let x = b.block("exit");
        b.push(body, Inst::load(Reg(1), Reg(2), MemWidth::B4));
        b.edge(e, body);
        b.edge(body, body);
        b.edge(body, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        for i in 0..n_loads {
            tb.step(body, vec![0x100_0000 + i as u64 * stride]);
        }
        tb.step(x, vec![]);
        let t = tb.finish().unwrap();
        (cfg, t)
    }

    #[test]
    fn memory_bound_time_does_not_scale_with_frequency() {
        // Strided misses: every load leaves the chip.
        let (cfg, t) = memory_bound(500, 4096);
        let m = Machine::paper_default();
        let hi = m.run(&cfg, &t, fast());
        let lo = m.run(&cfg, &t, slow());
        assert!(hi.dram_accesses > 400, "should miss: {}", hi.dram_accesses);
        // Memory-dominated: slowing the clock 4x should cost far less than
        // 4x in wall-clock time.
        let ratio = lo.total_time_us / hi.total_time_us;
        assert!(ratio < 2.0, "memory-bound dilation ratio = {ratio}");
        // And the invariant stall time is visible.
        assert!(hi.stall_cycles > 0.0);
    }

    #[test]
    fn cache_resident_loads_mostly_hit() {
        // 64 distinct hot addresses cycled many times: after warm-up, hits.
        let (cfg, t) = memory_bound(2000, 0); // same address every time
        let s = Machine::paper_default().run(&cfg, &t, fast());
        assert!(s.dram_accesses <= 4, "dram = {}", s.dram_accesses);
        assert!(s.l1d.miss_rate() < 0.01);
        assert!(s.cache_hit_cycles > 1500.0);
    }

    #[test]
    fn energy_scales_with_v_squared() {
        let (cfg, t) = compute_loop(100, false);
        let m = Machine::paper_default();
        let hi = m.run(&cfg, &t, fast());
        let lo = m.run(&cfg, &t, slow());
        let want = (0.7f64 * 0.7) / (1.65 * 1.65);
        let got = lo.processor_energy_uj() / hi.processor_energy_uj();
        assert!((got - want).abs() < 1e-9, "got {got} want {want}");
    }

    #[test]
    fn block_times_sum_to_total() {
        let (cfg, t) = memory_bound(300, 512);
        let s = Machine::paper_default().run(&cfg, &t, fast());
        let sum: f64 = s.blocks.iter().map(|b| b.time_us).sum();
        assert!(
            (sum - s.total_time_us).abs() < 1e-6 * s.total_time_us.max(1.0),
            "sum {sum} vs total {}",
            s.total_time_us
        );
        let total_inv: u64 = s.blocks.iter().map(|b| b.invocations).sum();
        assert_eq!(total_inv, t.len() as u64);
    }

    #[test]
    fn classification_cycles_are_consistent() {
        let (cfg, t) = memory_bound(400, 4096);
        let s = Machine::paper_default().run(&cfg, &t, fast());
        // Noverlap + Ndependent equals the total execution cycles of
        // computation (non-memory) instructions: each contributes its
        // latency exactly once, so the sum is bounded by committed
        // instructions times the largest latency class.
        let compute = s.overlap_cycles + s.dependent_cycles;
        // This trace is pure memory traffic (its loop body is a lone load),
        // so there are no computation cycles at all — and the sum is always
        // bounded by committed instructions times the worst latency class.
        assert!(
            compute <= s.committed_insts as f64 * 20.0,
            "compute latency sum {compute} looks wrong"
        );
        assert!(s.stall_cycles <= s.total_cycles + 1.0);
        // A memory-bound run must show stall or overlap.
        assert!(s.stall_cycles + s.overlap_cycles > 0.0);
    }

    #[test]
    fn branchy_code_pays_for_mispredictions() {
        // A loop whose exit branch alternates unpredictably... use a
        // pseudo-random taken pattern by alternating long/short runs.
        let mut b = CfgBuilder::new("branchy");
        let e = b.block("entry");
        let h = b.block("head");
        let t1 = b.block("t1");
        let t2 = b.block("t2");
        let x = b.block("exit");
        b.push(h, Inst::branch(Reg(1)));
        b.push(t1, Inst::alu(Opcode::IntAlu, Reg(2), &[Reg(0)]));
        b.push(t2, Inst::alu(Opcode::IntAlu, Reg(3), &[Reg(0)]));
        b.edge(e, h);
        b.edge(h, t1);
        b.edge(h, t2);
        b.edge(t1, h);
        b.edge(t2, h);
        b.edge(h, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        let mut rng = 0x9E3779B97F4A7C15u64;
        for _ in 0..300 {
            tb.step(h, vec![]);
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (rng >> 62) & 1 == 1 {
                tb.step(t1, vec![]);
            } else {
                tb.step(t2, vec![]);
            }
        }
        tb.step(h, vec![]);
        tb.step(x, vec![]);
        let t = tb.finish().unwrap();
        let s = Machine::paper_default().run(&cfg, &t, fast());
        assert!(s.mispredicts > 20, "mispredicts = {}", s.mispredicts);
    }
}

#[cfg(test)]
mod oversized_block_tests {
    use super::*;
    use crate::TraceBuilder;
    use dvs_ir::{CfgBuilder, Inst, Opcode, Reg};

    #[test]
    fn blocks_longer_than_the_pc_stride_run_fine() {
        let mut b = CfgBuilder::new("big");
        let e = b.block("entry");
        let big = b.block("big");
        let x = b.block("exit");
        for i in 0..600 {
            b.push(
                big,
                Inst::alu(Opcode::IntAlu, Reg((1 + i % 30) as u8), &[Reg(0)]),
            );
        }
        b.edge(e, big);
        b.edge(big, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]).step(big, vec![]).step(x, vec![]);
        let t = tb.finish().unwrap();
        let s = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        assert_eq!(s.committed_insts, 600);
        // The wrapped tail hits the block's own warm lines: at most
        // BLOCK_STRIDE/32 = 32 I-lines are ever touched.
        assert!(s.l1i.misses <= 33, "I-misses = {}", s.l1i.misses);
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use crate::TraceBuilder;
    use dvs_ir::CfgBuilder;

    #[test]
    fn run_stats_display_is_informative() {
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let x = b.block("exit");
        b.push(e, dvs_ir::Inst::nop());
        b.edge(e, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]).step(x, vec![]);
        let t = tb.finish().unwrap();
        let s = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.3, 600.0));
        let text = s.to_string();
        assert!(text.contains("IPC"));
        assert!(text.contains("600 MHz"));
        assert!(text.contains("µJ"));
    }
}

#[cfg(test)]
mod gating_tests {
    use super::*;
    use crate::{ClockGating, EnergyModel, SimConfig, TraceBuilder};
    use dvs_ir::{CfgBuilder, Inst, MemWidth, Reg};

    #[test]
    fn ungated_clock_charges_stall_cycles() {
        // A miss-heavy pointer walk has long idle stretches.
        let mut b = CfgBuilder::new("g");
        let e = b.block("entry");
        let body = b.block("body");
        let x = b.block("exit");
        b.push(body, Inst::load(Reg(1), Reg(1), MemWidth::B4));
        b.edge(e, body);
        b.edge(body, body);
        b.edge(body, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        for i in 0..300u64 {
            tb.step(body, vec![0x40_0000 + i * 4096]);
        }
        tb.step(x, vec![]);
        let t = tb.finish().unwrap();

        let perfect = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        let ungated_model = EnergyModel {
            gating: ClockGating::Ungated,
            ..EnergyModel::default()
        };
        let ungated = Machine::new(SimConfig::default(), ungated_model).run(
            &cfg,
            &t,
            OperatingPoint::new(1.65, 800.0),
        );

        // Same timing, strictly more energy without gating.
        assert!((perfect.total_cycles - ungated.total_cycles).abs() < 1e-9);
        assert!(
            ungated.processor_energy_uj() > perfect.processor_energy_uj() * 1.2,
            "ungated {} vs perfect {}",
            ungated.processor_energy_uj(),
            perfect.processor_energy_uj()
        );
    }
}
