/// Branch predictor geometry; the default matches the paper's Table 2
/// combined predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Bimodal table entries (2-bit counters).
    pub bimodal_entries: usize,
    /// Two-level pattern table entries (2-bit counters).
    pub two_level_entries: usize,
    /// History bits per branch in the two-level component.
    pub history_bits: u32,
    /// Chooser table entries (2-bit counters selecting bimodal vs 2-level).
    pub chooser_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            bimodal_entries: 2048,
            two_level_entries: 1024,
            history_bits: 8,
            chooser_entries: 1024,
            btb_entries: 512,
            btb_ways: 4,
        }
    }
}

/// Per-run predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional branches predicted.
    pub lookups: u64,
    /// Direction mispredictions.
    pub mispredicts: u64,
    /// Taken branches whose target missed in the BTB.
    pub btb_misses: u64,
}

/// The combined (tournament) predictor of Table 2: a 2K-entry bimodal
/// predictor and a 1K-entry two-level predictor with 8 bits of per-branch
/// history, arbitrated by a 1K-entry chooser, plus a 512-entry 4-way BTB
/// for taken-branch targets.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: PredictorConfig,
    bimodal: Vec<u8>,
    history: Vec<u8>,
    pattern: Vec<u8>,
    chooser: Vec<u8>,
    /// BTB sets, each an MRU list of (tag, target).
    btb: Vec<Vec<(u64, u64)>>,
    stats: PredictorStats,
}

impl BranchPredictor {
    /// Builds a predictor with all counters weakly-not-taken and empty BTB.
    #[must_use]
    pub fn new(config: PredictorConfig) -> Self {
        let btb_sets = (config.btb_entries / config.btb_ways).max(1);
        BranchPredictor {
            config,
            bimodal: vec![1; config.bimodal_entries],
            history: vec![0; config.two_level_entries],
            pattern: vec![1; config.two_level_entries],
            chooser: vec![1; config.chooser_entries],
            btb: vec![Vec::with_capacity(config.btb_ways); btb_sets],
            stats: PredictorStats::default(),
        }
    }

    /// Predicts the direction of the branch at `pc`, then updates all state
    /// with the actual `taken` outcome and `target`. Returns `true` when
    /// direction *and* (for taken branches) target were both right.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        self.stats.lookups += 1;
        let bi_ix = (pc as usize / 4) % self.config.bimodal_entries;
        let h_ix = (pc as usize / 4) % self.config.two_level_entries;
        let hist = self.history[h_ix];
        let p_ix = ((pc as usize / 4) ^ (hist as usize)) % self.config.two_level_entries;
        let c_ix = (pc as usize / 4) % self.config.chooser_entries;

        let bi_pred = self.bimodal[bi_ix] >= 2;
        let tl_pred = self.pattern[p_ix] >= 2;
        let use_two_level = self.chooser[c_ix] >= 2;
        let pred = if use_two_level { tl_pred } else { bi_pred };

        // Update counters.
        bump(&mut self.bimodal[bi_ix], taken);
        bump(&mut self.pattern[p_ix], taken);
        if bi_pred != tl_pred {
            // Train chooser toward the component that was right.
            bump(&mut self.chooser[c_ix], tl_pred == taken);
        }
        let mask = (1u16 << self.config.history_bits) - 1;
        self.history[h_ix] = (((u16::from(hist) << 1) | u16::from(taken)) & mask) as u8;

        let mut correct = pred == taken;
        if taken && !self.btb_lookup_update(pc, target) {
            self.stats.btb_misses += 1;
            correct = false;
        }
        if pred != taken {
            self.stats.mispredicts += 1;
        }
        correct
    }

    /// Looks up `pc` in the BTB, checking the stored target; installs or
    /// refreshes the entry. Returns whether a correct target was present.
    fn btb_lookup_update(&mut self, pc: u64, target: u64) -> bool {
        let sets = self.btb.len();
        let set_ix = (pc as usize / 4) % sets;
        let tag = pc / 4 / sets as u64;
        let set = &mut self.btb[set_ix];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (t, old_target) = set.remove(pos);
            set.insert(0, (t, target));
            old_target == target
        } else {
            if set.len() == self.config.btb_ways {
                set.pop();
            }
            set.insert(0, (tag, target));
            false
        }
    }

    /// Running statistics.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

fn bump(counter: &mut u8, up: bool) {
    if up {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred() -> BranchPredictor {
        BranchPredictor::new(PredictorConfig::default())
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut p = pred();
        let mut correct_late = 0;
        for i in 0..100 {
            let ok = p.predict_and_update(0x400, true, 0x800);
            if i >= 10 && ok {
                correct_late += 1;
            }
        }
        assert_eq!(correct_late, 90, "should lock on after warm-up");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = pred();
        // T,N,T,N... The bimodal component can't learn this; the two-level
        // one can, and the chooser should migrate to it.
        let mut correct_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let ok = p.predict_and_update(0x123400, taken, 0x500);
            if i >= 200 && ok {
                correct_late += 1;
            }
        }
        assert!(
            correct_late >= 190,
            "two-level should capture alternation, got {correct_late}/200"
        );
    }

    #[test]
    fn btb_miss_on_first_taken_branch() {
        let mut p = pred();
        p.predict_and_update(0x40, true, 0x100);
        assert_eq!(p.stats().btb_misses, 1);
        // Second time the target is cached.
        for _ in 0..5 {
            p.predict_and_update(0x40, true, 0x100);
        }
        assert_eq!(p.stats().btb_misses, 1);
    }

    #[test]
    fn btb_detects_target_change() {
        let mut p = pred();
        for _ in 0..4 {
            p.predict_and_update(0x40, true, 0x100);
        }
        // Same branch, new target (e.g. indirect): treated as BTB miss once.
        let before = p.stats().btb_misses;
        p.predict_and_update(0x40, true, 0x999);
        assert_eq!(p.stats().btb_misses, before + 1);
    }

    #[test]
    fn not_taken_branches_skip_btb() {
        let mut p = pred();
        for _ in 0..10 {
            p.predict_and_update(0x80, false, 0);
        }
        assert_eq!(p.stats().btb_misses, 0);
    }

    #[test]
    fn random_branches_mispredict_substantially() {
        let mut p = pred();
        // Deterministic pseudo-random outcomes.
        let mut x = 0x12345678u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let taken = (x >> 62) & 1 == 1;
            p.predict_and_update(0x999000, taken, 0x100);
        }
        let wrong = p.stats().mispredicts;
        assert!(wrong > 200, "random stream should hurt: {wrong}");
    }
}
