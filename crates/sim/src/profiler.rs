use crate::{Machine, RunStats, Trace};
use dvs_ir::{BlockModeCost, Cfg, Profile, ProfileBuilder};
use dvs_vf::VoltageLadder;

/// The four program parameters of the paper's analytical model (§3),
/// extracted from cycle-level simulation exactly as Table 7 does.
///
/// Cycle counts are frequency-independent program properties; the stall
/// time `tinvariant` is absolute because memory is asynchronous.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramParams {
    /// `Noverlap`: computation cycles that ran while a main-memory miss was
    /// outstanding.
    pub n_overlap: f64,
    /// `Ndependent`: computation cycles with no miss outstanding.
    pub n_dependent: f64,
    /// `Ncache`: cycles spent in cache-hit memory-operation latencies.
    pub n_cache: f64,
    /// `tinvariant`: absolute time (µs) the processor spent stalled on
    /// asynchronous memory.
    pub t_invariant_us: f64,
}

impl ProgramParams {
    /// Derives the parameters from a fixed-frequency run.
    ///
    /// The raw counters sum instruction *latencies*, which on a superscalar
    /// core exceed wall-clock cycles (several instructions retire per
    /// cycle). The analytical model, however, assumes its cycle counts
    /// execute serially: `t(f) = max(tinv + Ncache/f, Noverlap/f) +
    /// Ndependent/f`. To keep the model's single-frequency time consistent
    /// with the simulator's measured runtime — so that deadlines derived
    /// from simulation are feasible in the model — the three cycle counts
    /// are scaled by a common factor chosen such that `t(f_profile)`
    /// equals the measured wall time. Ratios between the counts (which
    /// drive the model's case analysis) are preserved.
    #[must_use]
    pub fn from_run(run: &RunStats) -> Self {
        let f = run.point.frequency_mhz;
        let raw = ProgramParams {
            n_overlap: run.overlap_cycles,
            n_dependent: run.dependent_cycles,
            n_cache: run.cache_hit_cycles,
            t_invariant_us: run.stall_cycles / f,
        };
        let t_wall = run.total_cycles / f;
        let mem = raw.t_invariant_us + raw.n_cache / f;
        let compute = raw.n_overlap / f;
        let t_model = mem.max(compute) + raw.n_dependent / f;
        let denom = t_model - raw.t_invariant_us;
        let target = (t_wall - raw.t_invariant_us).max(0.0);
        let kappa = if denom > 1e-12 { target / denom } else { 1.0 };
        ProgramParams {
            n_overlap: raw.n_overlap * kappa,
            n_dependent: raw.n_dependent * kappa,
            n_cache: raw.n_cache * kappa,
            t_invariant_us: raw.t_invariant_us,
        }
    }
}

/// Profiles a program once per DVS mode, assembling the [`Profile`] the
/// MILP consumes (per-block `T(j,m)`/`E(j,m)` plus edge and local-path
/// counts) and keeping the per-mode [`RunStats`] for parameter extraction
/// and baseline energy/time queries.
#[derive(Debug)]
pub struct ModeProfiler {
    machine: Machine,
}

impl ModeProfiler {
    /// Creates a profiler around `machine`.
    #[must_use]
    pub fn new(machine: Machine) -> Self {
        ModeProfiler { machine }
    }

    /// The machine used for profiling.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Runs `trace` once at every mode of `ladder` and assembles the
    /// profile. Returns the profile and the per-mode run statistics
    /// (indexed like the ladder, slowest first).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not a valid entry-to-exit walk of `cfg`.
    #[must_use]
    pub fn profile(
        &self,
        cfg: &Cfg,
        trace: &Trace,
        ladder: &VoltageLadder,
    ) -> (Profile, Vec<RunStats>) {
        let _span = dvs_obs::span!("sim.profile");
        let mut pb = ProfileBuilder::new(cfg, ladder.len());
        assert!(
            pb.record_walk(cfg, &trace.walk()),
            "trace must be an entry-to-exit walk of the CFG"
        );
        let mut runs = Vec::with_capacity(ladder.len());
        for (mode, point) in ladder.iter() {
            let run = self.machine.run(cfg, trace, point);
            for (bix, bs) in run.blocks.iter().enumerate() {
                if bs.invocations > 0 {
                    let inv = bs.invocations as f64;
                    pb.set_block_cost(
                        dvs_ir::BlockId(bix),
                        mode.index(),
                        BlockModeCost {
                            time_us: bs.time_us / inv,
                            energy_uj: crate::EnergyModel::cap_to_uj(bs.cap_nf, point.voltage)
                                / inv,
                        },
                    );
                }
            }
            runs.push(run);
        }
        (pb.finish(), runs)
    }

    /// Extracts the analytical-model parameters from the *fastest* mode's
    /// run (the paper's reference frequency for cycle counts).
    #[must_use]
    pub fn extract_params(runs: &[RunStats]) -> ProgramParams {
        let fastest = runs
            .iter()
            .max_by(|a, b| {
                a.point
                    .frequency_mhz
                    .partial_cmp(&b.point.frequency_mhz)
                    .expect("frequencies are finite")
            })
            .expect("at least one run");
        ProgramParams::from_run(fastest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;
    use dvs_ir::{CfgBuilder, Inst, MemWidth, Opcode, Reg};
    use dvs_vf::AlphaPower;

    fn program() -> (Cfg, Trace) {
        let mut b = CfgBuilder::new("p");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.push(body, Inst::load(Reg(1), Reg(2), MemWidth::B4));
        b.push(body, Inst::alu(Opcode::IntAlu, Reg(3), &[Reg(1)]));
        b.push(h, Inst::branch(Reg(3)));
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let cfg = b.finish(e, x).unwrap();
        let (e, h, body, x) = (
            cfg.entry(),
            cfg.block_by_label("head").unwrap(),
            cfg.block_by_label("body").unwrap(),
            cfg.exit(),
        );
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        for i in 0..200u64 {
            tb.step(h, vec![]);
            tb.step(body, vec![0x10000 + (i % 16) * 64]);
        }
        tb.step(h, vec![]);
        tb.step(x, vec![]);
        let t = tb.finish().unwrap();
        (cfg, t)
    }

    #[test]
    fn profile_covers_all_modes_and_blocks() {
        let (cfg, trace) = program();
        let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
        let profiler = ModeProfiler::new(Machine::paper_default());
        let (profile, runs) = profiler.profile(&cfg, &trace, &ladder);
        assert_eq!(profile.num_modes(), 3);
        assert_eq!(runs.len(), 3);
        let body = cfg.block_by_label("body").unwrap();
        for m in 0..3 {
            let c = profile.block_cost(body, m);
            assert!(c.time_us > 0.0, "mode {m} has no time");
            assert!(c.energy_uj > 0.0, "mode {m} has no energy");
        }
        // Faster modes take less (or equal) time per invocation.
        let t0 = profile.block_cost(body, 0).time_us;
        let t2 = profile.block_cost(body, 2).time_us;
        assert!(t2 < t0);
        // Slower modes use less energy per invocation (V² scaling).
        let e0 = profile.block_cost(body, 0).energy_uj;
        let e2 = profile.block_cost(body, 2).energy_uj;
        assert!(e0 < e2);
    }

    #[test]
    fn profile_totals_match_run_totals() {
        let (cfg, trace) = program();
        let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
        let profiler = ModeProfiler::new(Machine::paper_default());
        let (profile, runs) = profiler.profile(&cfg, &trace, &ladder);
        for (m, run) in runs.iter().enumerate() {
            let ptime = profile.total_time_at(m);
            assert!(
                (ptime - run.total_time_us).abs() < 1e-6 * run.total_time_us.max(1.0),
                "mode {m}: {ptime} vs {}",
                run.total_time_us
            );
            let penergy = profile.total_energy_at(m);
            assert!(
                (penergy - run.processor_energy_uj()).abs()
                    < 1e-6 * run.processor_energy_uj().max(1.0),
                "mode {m}: {penergy} vs {}",
                run.processor_energy_uj()
            );
        }
    }

    #[test]
    fn params_extracted_from_fastest_run() {
        let (cfg, trace) = program();
        let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
        let profiler = ModeProfiler::new(Machine::paper_default());
        let (_, runs) = profiler.profile(&cfg, &trace, &ladder);
        let params = ModeProfiler::extract_params(&runs);
        assert!(params.n_dependent > 0.0);
        assert!(params.n_cache > 0.0);
        assert!(params.t_invariant_us >= 0.0);
    }
}
