use dvs_ir::{BlockId, Cfg};

/// One dynamic execution of a basic block: which block ran, the effective
/// byte address of each of its memory instructions (in program order), and
/// whether its terminating branch (if any) was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynBlock {
    /// The static block.
    pub block: BlockId,
    /// One address per `Load`/`Store` in the block, in order.
    pub addrs: Vec<u64>,
    /// Outcome of the block-ending branch; `false` for fall-through blocks.
    pub taken: bool,
}

/// A dynamic instruction trace: the sequence of block executions from CFG
/// entry to CFG exit, with resolved memory addresses and branch outcomes.
///
/// The same trace is replayed at every DVS mode (the paper's assumption 1:
/// program behaviour does not change with frequency), so traces are built
/// once per (program, input) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    blocks: Vec<DynBlock>,
}

impl Trace {
    /// The dynamic block executions in order.
    #[must_use]
    pub fn blocks(&self) -> &[DynBlock] {
        &self.blocks
    }

    /// Number of dynamic block executions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the trace is empty (never true for built traces).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block id sequence, e.g. for [`dvs_ir::ProfileBuilder::record_walk`].
    #[must_use]
    pub fn walk(&self) -> Vec<BlockId> {
        self.blocks.iter().map(|b| b.block).collect()
    }

    /// Total dynamic instruction count with respect to `cfg`.
    #[must_use]
    pub fn dynamic_inst_count(&self, cfg: &Cfg) -> u64 {
        self.blocks
            .iter()
            .map(|d| cfg.block(d.block).len() as u64)
            .sum()
    }
}

/// Builds [`Trace`]s while validating them against a [`Cfg`].
#[derive(Debug)]
pub struct TraceBuilder<'a> {
    cfg: &'a Cfg,
    blocks: Vec<DynBlock>,
    ok: bool,
}

impl<'a> TraceBuilder<'a> {
    /// Starts an empty trace for `cfg`.
    #[must_use]
    pub fn new(cfg: &'a Cfg) -> Self {
        TraceBuilder {
            cfg,
            blocks: Vec::new(),
            ok: true,
        }
    }

    /// Appends one dynamic block execution. The block must be the CFG entry
    /// (first call) or a successor of the previous block, and `addrs` must
    /// have exactly one element per memory instruction in the block.
    pub fn step(&mut self, block: BlockId, addrs: Vec<u64>) -> &mut Self {
        let valid_edge = match self.blocks.last() {
            None => block == self.cfg.entry(),
            Some(prev) => self.cfg.edge_between(prev.block, block).is_some(),
        };
        if !valid_edge || addrs.len() != self.cfg.block(block).mem_inst_count() {
            self.ok = false;
            return self;
        }
        // The previous block's branch was "taken" if it didn't fall through
        // to its lowest-id successor.
        if let Some(prev) = self.blocks.last_mut() {
            let fallthrough = self
                .cfg
                .successors(prev.block)
                .min()
                .expect("non-exit block has successors");
            prev.taken = block != fallthrough;
        }
        self.blocks.push(DynBlock {
            block,
            addrs,
            taken: false,
        });
        self
    }

    /// Finalizes the trace. Returns `None` if any step was invalid or the
    /// trace does not run from entry to exit.
    #[must_use]
    pub fn finish(self) -> Option<Trace> {
        if !self.ok
            || self.blocks.first().map(|b| b.block) != Some(self.cfg.entry())
            || self.blocks.last().map(|b| b.block) != Some(self.cfg.exit())
        {
            return None;
        }
        Some(Trace {
            blocks: self.blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{CfgBuilder, Inst, MemWidth, Opcode, Reg};

    fn loop_cfg() -> Cfg {
        let mut b = CfgBuilder::new("loop");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.push(body, Inst::load(Reg(1), Reg(2), MemWidth::B4));
        b.push(body, Inst::alu(Opcode::IntAlu, Reg(3), &[Reg(1)]));
        b.push(h, Inst::branch(Reg(3)));
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        b.finish(e, x).unwrap()
    }

    #[test]
    fn valid_trace_builds() {
        let g = loop_cfg();
        let (e, h, body, x) = (
            g.entry(),
            g.block_by_label("head").unwrap(),
            g.block_by_label("body").unwrap(),
            g.exit(),
        );
        let mut tb = TraceBuilder::new(&g);
        tb.step(e, vec![])
            .step(h, vec![])
            .step(body, vec![0x1000])
            .step(h, vec![])
            .step(x, vec![]);
        let t = tb.finish().unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.walk(), vec![e, h, body, h, x]);
        assert_eq!(t.dynamic_inst_count(&g), (1 + 2 + 1));
    }

    #[test]
    fn taken_flags_follow_control_flow() {
        let g = loop_cfg();
        let (e, h, body, x) = (
            g.entry(),
            g.block_by_label("head").unwrap(),
            g.block_by_label("body").unwrap(),
            g.exit(),
        );
        let mut tb = TraceBuilder::new(&g);
        tb.step(e, vec![])
            .step(h, vec![])
            .step(body, vec![0x0])
            .step(h, vec![])
            .step(x, vec![]);
        let t = tb.finish().unwrap();
        // head's successors are {body, exit}; lowest id is body, so
        // head->body is fall-through and head->exit is taken.
        assert!(!t.blocks()[1].taken, "head->body falls through");
        assert!(t.blocks()[3].taken, "head->exit is taken");
    }

    #[test]
    fn wrong_address_count_rejected() {
        let g = loop_cfg();
        let (e, h, body) = (
            g.entry(),
            g.block_by_label("head").unwrap(),
            g.block_by_label("body").unwrap(),
        );
        let mut tb = TraceBuilder::new(&g);
        tb.step(e, vec![]).step(h, vec![]).step(body, vec![]); // body needs 1 addr
        assert!(tb.finish().is_none());
    }

    #[test]
    fn non_edge_step_rejected() {
        let g = loop_cfg();
        let (e, body) = (g.entry(), g.block_by_label("body").unwrap());
        let mut tb = TraceBuilder::new(&g);
        tb.step(e, vec![]).step(body, vec![0x0]); // no edge entry->body
        assert!(tb.finish().is_none());
    }

    #[test]
    fn incomplete_trace_rejected() {
        let g = loop_cfg();
        let (e, h) = (g.entry(), g.block_by_label("head").unwrap());
        let mut tb = TraceBuilder::new(&g);
        tb.step(e, vec![]).step(h, vec![]);
        assert!(tb.finish().is_none(), "must end at exit");
    }
}
