//! Property tests: the set-associative cache against a naive reference
//! model, and timing-model sanity over random traces.

use dvs_sim::{AccessOutcome, CacheConfig, CacheSim, Machine, TraceBuilder};
use dvs_ir::{CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_vf::OperatingPoint;
use proptest::prelude::*;

/// A deliberately naive LRU set-associative cache: per-set `Vec` of tags
/// ordered by recency, rebuilt with O(n) scans.
struct ReferenceCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    block_bits: u32,
    set_mask: u64,
}

impl ReferenceCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        ReferenceCache {
            sets: vec![Vec::new(); sets],
            ways: cfg.ways,
            block_bits: cfg.block_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    fn access(&mut self, addr: u64) -> AccessOutcome {
        let line = addr >> self.block_bits;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let s = &mut self.sets[set];
        if let Some(ix) = s.iter().position(|&t| t == tag) {
            let t = s.remove(ix);
            s.insert(0, t);
            AccessOutcome::Hit
        } else {
            s.insert(0, tag);
            s.truncate(self.ways);
            AccessOutcome::Miss
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_matches_reference_model(
        addrs in prop::collection::vec(0u64..0x4000, 1..400),
        ways in 1usize..5,
        sets_pow in 1u32..5,
    ) {
        let cfg = CacheConfig {
            size_bytes: 32 * u64::from(1u32 << sets_pow) * ways as u64,
            ways,
            block_bytes: 32,
        };
        let mut dut = CacheSim::new(cfg);
        let mut reference = ReferenceCache::new(cfg);
        for &a in &addrs {
            prop_assert_eq!(dut.access(a), reference.access(a), "at addr {:#x}", a);
        }
        let misses = addrs
            .iter()
            .map(|_| ())
            .count(); // length only; stats checked against re-run below
        prop_assert!(dut.stats().accesses as usize == misses);
    }

    #[test]
    fn machine_timing_monotone_in_frequency(
        n_alu in 1usize..24,
        n_loads in 0usize..8,
        iters in 1u64..60,
        seed in any::<u64>(),
    ) {
        // Random loop body of ALU ops + loads; time at a faster clock can
        // never exceed time at a slower clock, and cycle counts stay equal
        // for pure-compute bodies.
        let mut b = CfgBuilder::new("p");
        let e = b.block("entry");
        let body = b.block("body");
        let x = b.block("exit");
        for i in 0..n_alu {
            b.push(body, Inst::alu(Opcode::IntAlu, Reg((1 + i % 20) as u8), &[Reg(0)]));
        }
        for _ in 0..n_loads {
            b.push(body, Inst::load(Reg(30), Reg(31), MemWidth::B4));
        }
        b.push(body, Inst::branch(Reg(1)));
        b.edge(e, body);
        b.edge(body, body);
        b.edge(body, x);
        let cfg = b.finish(e, x).expect("valid");
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        let mut s = seed | 1;
        for _ in 0..iters {
            let addrs: Vec<u64> = (0..n_loads)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (s >> 30) % 0x10_0000
                })
                .collect();
            tb.step(body, addrs);
        }
        tb.step(x, vec![]);
        let t = tb.finish().expect("valid trace");
        let m = Machine::paper_default();
        let slow = m.run(&cfg, &t, OperatingPoint::new(0.7, 200.0));
        let fast = m.run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        prop_assert!(fast.total_time_us <= slow.total_time_us * (1.0 + 1e-9));
        prop_assert_eq!(fast.committed_insts, slow.committed_insts);
        // Energy at the lower voltage is strictly lower (same events, V²).
        prop_assert!(slow.processor_energy_uj() < fast.processor_energy_uj());
        // Block time attribution always sums to the total.
        let sum: f64 = fast.blocks.iter().map(|bs| bs.time_us).sum();
        prop_assert!((sum - fast.total_time_us).abs() < 1e-6 * fast.total_time_us.max(1.0));
    }
}
