//! Randomized tests: the set-associative cache against a naive reference
//! model, and timing-model sanity over random traces.
//!
//! Cases come from a fixed-seed SplitMix64 generator so failures reproduce
//! exactly.

use dvs_ir::{CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{AccessOutcome, CacheConfig, CacheSim, Machine, TraceBuilder};
use dvs_vf::OperatingPoint;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn int(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// A deliberately naive LRU set-associative cache: per-set `Vec` of tags
/// ordered by recency, rebuilt with O(n) scans.
struct ReferenceCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    block_bits: u32,
    set_mask: u64,
}

impl ReferenceCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets();
        ReferenceCache {
            sets: vec![Vec::new(); sets],
            ways: cfg.ways,
            block_bits: cfg.block_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    fn access(&mut self, addr: u64) -> AccessOutcome {
        let line = addr >> self.block_bits;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let s = &mut self.sets[set];
        if let Some(ix) = s.iter().position(|&t| t == tag) {
            let t = s.remove(ix);
            s.insert(0, t);
            AccessOutcome::Hit
        } else {
            s.insert(0, tag);
            s.truncate(self.ways);
            AccessOutcome::Miss
        }
    }
}

#[test]
fn cache_matches_reference_model() {
    let mut rng = Rng(0xD5_5EED_0021);
    for case in 0..48 {
        let ways = rng.int(1, 5) as usize;
        let sets_pow = rng.int(1, 5) as u32;
        let len = rng.int(1, 400) as usize;
        let addrs: Vec<u64> = (0..len).map(|_| rng.int(0, 0x4000)).collect();
        let cfg = CacheConfig {
            size_bytes: 32 * u64::from(1u32 << sets_pow) * ways as u64,
            ways,
            block_bytes: 32,
        };
        let mut dut = CacheSim::new(cfg);
        let mut reference = ReferenceCache::new(cfg);
        for &a in &addrs {
            assert_eq!(
                dut.access(a),
                reference.access(a),
                "case {case}: divergence at addr {a:#x}"
            );
        }
        assert_eq!(dut.stats().accesses as usize, addrs.len(), "case {case}");
    }
}

#[test]
fn machine_timing_monotone_in_frequency() {
    let mut rng = Rng(0xD5_5EED_0022);
    for case in 0..48 {
        // Random loop body of ALU ops + loads; time at a faster clock can
        // never exceed time at a slower clock, and committed instruction
        // counts stay equal.
        let n_alu = rng.int(1, 24) as usize;
        let n_loads = rng.int(0, 8) as usize;
        let iters = rng.int(1, 60);
        let mut b = CfgBuilder::new("p");
        let e = b.block("entry");
        let body = b.block("body");
        let x = b.block("exit");
        for i in 0..n_alu {
            b.push(
                body,
                Inst::alu(Opcode::IntAlu, Reg((1 + i % 20) as u8), &[Reg(0)]),
            );
        }
        for _ in 0..n_loads {
            b.push(body, Inst::load(Reg(30), Reg(31), MemWidth::B4));
        }
        b.push(body, Inst::branch(Reg(1)));
        b.edge(e, body);
        b.edge(body, body);
        b.edge(body, x);
        let cfg = b.finish(e, x).expect("valid");
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        for _ in 0..iters {
            let addrs: Vec<u64> = (0..n_loads).map(|_| rng.int(0, 0x10_0000)).collect();
            tb.step(body, addrs);
        }
        tb.step(x, vec![]);
        let t = tb.finish().expect("valid trace");
        let m = Machine::paper_default();
        let slow = m.run(&cfg, &t, OperatingPoint::new(0.7, 200.0));
        let fast = m.run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        assert!(
            fast.total_time_us <= slow.total_time_us * (1.0 + 1e-9),
            "case {case}: faster clock is slower"
        );
        assert_eq!(fast.committed_insts, slow.committed_insts, "case {case}");
        // Energy at the lower voltage is strictly lower (same events, V²).
        assert!(
            slow.processor_energy_uj() < fast.processor_energy_uj(),
            "case {case}: energy not lower at low voltage"
        );
        // Block time attribution always sums to the total.
        let sum: f64 = fast.blocks.iter().map(|bs| bs.time_us).sum();
        assert!(
            (sum - fast.total_time_us).abs() < 1e-6 * fast.total_time_us.max(1.0),
            "case {case}: block times don't sum"
        );
    }
}
