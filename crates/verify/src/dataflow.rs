//! Forward mode-state dataflow over `(Cfg, Schedule)`.
//!
//! Two parallel meet-over-all-paths fixpoints, both over the powerset
//! lattice of mode indices (∅ = unreachable/⊥, singleton = settled mode,
//! larger sets = ambiguous/⊤-ward):
//!
//! * **All-paths** states `V(e)`/`AS(b)`: which modes can be live along
//!   edge `e` / on entry to block `b` considering *every* CFG path. An
//!   emitted mode-set on `e` forces `V(e)` to a singleton; an elided edge
//!   transmits its source block's entry state unchanged.
//! * **Executed-paths** states `S(e)`/`ES(b)`: the same question restricted
//!   to paths the profile actually executed, propagated at *local-path*
//!   granularity — `S(e)` unions `S(h)` only over entering edges `h` whose
//!   local-path count `D(h, src(e), e)` is positive. This is what makes
//!   silent-set elision verifiable: an elided edge is silent precisely
//!   when all its executed entering paths agree on the mode.
//!
//! Both fixpoints are monotone over a finite lattice and terminate.

use dvs_ir::{Cfg, EdgeId, Profile};
use dvs_sim::EdgeSchedule;
use std::collections::BTreeSet;

/// The computed mode states. All vectors are dense, indexed by
/// [`EdgeId`]/[`dvs_ir::BlockId`] raw indices.
#[derive(Debug, Clone)]
pub struct ModeFlow {
    /// `V(e)`: modes possibly live along edge `e` on any CFG path.
    pub all_edge: Vec<BTreeSet<usize>>,
    /// `AS(b)`: modes under which block `b` can execute on any CFG path.
    pub all_block: Vec<BTreeSet<usize>>,
    /// `S(e)`: modes live along `e` on executed paths; empty when the
    /// profile never traverses `e`.
    pub exec_edge: Vec<BTreeSet<usize>>,
    /// `ES(b)`: modes under which `b` executed according to the profile.
    pub exec_block: Vec<BTreeSet<usize>>,
}

impl ModeFlow {
    /// Runs both fixpoints. `emitted` masks which edges carry an actual
    /// mode-set instruction (`None` = every edge does, the naive
    /// pre-hoisting placement).
    #[must_use]
    pub fn compute(
        cfg: &Cfg,
        profile: &Profile,
        schedule: &EdgeSchedule,
        emitted: Option<&[bool]>,
    ) -> Self {
        let emit = |e: EdgeId| emitted.is_none_or(|m| m.get(e.index()).copied().unwrap_or(true));
        let initial = schedule.initial.index();
        let rpo = cfg.reverse_post_order();

        // All-paths fixpoint.
        let mut all_edge: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); cfg.num_edges()];
        let mut all_block: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); cfg.num_blocks()];
        all_block[cfg.entry().0].insert(initial);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b != cfg.entry() {
                    let mut state = BTreeSet::new();
                    for e in cfg.in_edges(b) {
                        state.extend(all_edge[e.index()].iter().copied());
                    }
                    if state != all_block[b.0] {
                        all_block[b.0] = state;
                        changed = true;
                    }
                }
                for e in cfg.out_edges(b) {
                    let v: BTreeSet<usize> = if emit(e) {
                        std::iter::once(schedule.edge_modes[e.index()].index()).collect()
                    } else {
                        all_block[b.0].clone()
                    };
                    if v != all_edge[e.index()] {
                        all_edge[e.index()] = v;
                        changed = true;
                    }
                }
            }
        }

        // Executed-paths fixpoint at local-path granularity. For each edge
        // `e`, collect the entering edges `h` (or the trace start) whose
        // local path `(h, src(e), e)` has positive count.
        let mut feeders: Vec<Vec<Option<EdgeId>>> = vec![Vec::new(); cfg.num_edges()];
        for (path, d) in profile.local_paths() {
            if d == 0 {
                continue;
            }
            if let Some(exit) = path.exit {
                feeders[exit.index()].push(path.enter);
            }
        }
        let mut exec_edge: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); cfg.num_edges()];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                for e in cfg.out_edges(b) {
                    if profile.edge_count(e) == 0 {
                        continue;
                    }
                    let s: BTreeSet<usize> = if emit(e) {
                        std::iter::once(schedule.edge_modes[e.index()].index()).collect()
                    } else {
                        let mut s = BTreeSet::new();
                        for h in &feeders[e.index()] {
                            match h {
                                Some(h) => s.extend(exec_edge[h.index()].iter().copied()),
                                None => {
                                    s.insert(initial);
                                }
                            }
                        }
                        s
                    };
                    if s != exec_edge[e.index()] {
                        exec_edge[e.index()] = s;
                        changed = true;
                    }
                }
            }
        }
        let mut exec_block: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); cfg.num_blocks()];
        for b in cfg.blocks() {
            let mut s = BTreeSet::new();
            for e in cfg.in_edges(b.id) {
                s.extend(exec_edge[e.index()].iter().copied());
            }
            if b.id == cfg.entry() && profile.block_count(b.id) > 0 {
                s.insert(initial);
            }
            exec_block[b.id.0] = s;
        }

        ModeFlow {
            all_edge,
            all_block,
            exec_edge,
            exec_block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, ProfileBuilder};
    use dvs_vf::ModeId;

    fn costs(pb: &mut ProfileBuilder, cfg: &Cfg, modes: usize) {
        for b in cfg.blocks() {
            for m in 0..modes {
                pb.set_block_cost(
                    b.id,
                    m,
                    BlockModeCost {
                        time_us: 1.0,
                        energy_uj: 1.0,
                    },
                );
            }
        }
    }

    /// Diamond where both arms set different modes but re-join with an
    /// explicit set on one join edge only.
    #[test]
    fn all_paths_join_unions_modes() {
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let t = b.block("t");
        let f = b.block("f");
        let x = b.block("exit");
        b.edge(e, t);
        b.edge(e, f);
        b.edge(t, x);
        b.edge(f, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 2);
        costs(&mut pb, &cfg, 2);
        pb.record_walk(&cfg, &[e, t, x]);
        let profile = pb.finish();
        let e_t = cfg.edge_between(e, t).unwrap();
        let e_f = cfg.edge_between(e, f).unwrap();
        let t_x = cfg.edge_between(t, x).unwrap();
        let f_x = cfg.edge_between(f, x).unwrap();
        let mut schedule = EdgeSchedule::uniform(&cfg, ModeId(0));
        schedule.edge_modes[e_t.index()] = ModeId(1);
        schedule.edge_modes[e_f.index()] = ModeId(0);
        // Arms emitted, join edges elided: the exit sees {0, 1} on all
        // paths but only {1} on executed paths (only the t arm ran).
        let emitted: Vec<bool> = cfg
            .edges()
            .map(|edge| edge.id == e_t || edge.id == e_f)
            .collect();
        let flow = ModeFlow::compute(&cfg, &profile, &schedule, Some(&emitted));
        assert_eq!(flow.all_edge[e_t.index()], BTreeSet::from([1]));
        assert_eq!(flow.all_edge[t_x.index()], BTreeSet::from([1]));
        assert_eq!(flow.all_edge[f_x.index()], BTreeSet::from([0]));
        assert_eq!(flow.all_block[x.0], BTreeSet::from([0, 1]));
        assert_eq!(flow.exec_block[x.0], BTreeSet::from([1]));
        assert!(flow.exec_edge[f_x.index()].is_empty(), "cold edge stays ⊥");
    }

    /// A loop whose back edge is elided keeps the loop-entry mode stable.
    #[test]
    fn loop_fixpoint_converges() {
        let mut b = CfgBuilder::new("l");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 3);
        costs(&mut pb, &cfg, 3);
        pb.record_walk(&cfg, &[e, h, body, h, body, h, x]);
        let profile = pb.finish();
        let e_h = cfg.edge_between(e, h).unwrap();
        let mut schedule = EdgeSchedule::uniform(&cfg, ModeId(2));
        schedule.edge_modes[e_h.index()] = ModeId(1);
        // Only the loop-entry edge is emitted; everything else flows.
        let emitted: Vec<bool> = cfg.edges().map(|edge| edge.id == e_h).collect();
        let flow = ModeFlow::compute(&cfg, &profile, &schedule, Some(&emitted));
        assert_eq!(flow.all_block[h.0], BTreeSet::from([1]));
        assert_eq!(flow.all_block[body.0], BTreeSet::from([1]));
        assert_eq!(flow.all_block[x.0], BTreeSet::from([1]));
        assert_eq!(flow.exec_block[body.0], BTreeSet::from([1]));
    }

    /// With every edge emitted (naive placement) the states are exactly
    /// the nominal schedule modes.
    #[test]
    fn fully_emitted_matches_nominal() {
        let mut b = CfgBuilder::new("c");
        let e = b.block("entry");
        let m = b.block("mid");
        let x = b.block("exit");
        b.edge(e, m);
        b.edge(m, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 2);
        costs(&mut pb, &cfg, 2);
        pb.record_walk(&cfg, &[e, m, x]);
        let profile = pb.finish();
        let mut schedule = EdgeSchedule::uniform(&cfg, ModeId(0));
        let e_m = cfg.edge_between(e, m).unwrap();
        schedule.edge_modes[e_m.index()] = ModeId(1);
        let flow = ModeFlow::compute(&cfg, &profile, &schedule, None);
        assert_eq!(flow.all_edge[e_m.index()], BTreeSet::from([1]));
        assert_eq!(flow.exec_edge[e_m.index()], BTreeSet::from([1]));
        assert_eq!(flow.all_block[m.0], BTreeSet::from([1]));
    }
}
