//! Diagnostics with stable codes, severities, and renderers.
//!
//! Codes are append-only: a code, once published, keeps its meaning forever
//! so CI greps and suppression lists stay valid across releases.

use dvs_ir::{BlockId, EdgeId};
use dvs_obs::json::Json;
use std::fmt;

/// How bad a finding is. Ordering is `Info < Warning < Error`, so reports
/// can sort most-severe-first with a plain `sort_by_key(Reverse(..))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth seeing, never a defect by itself.
    Info,
    /// Suspicious but not provably wrong; `--deny` does not gate on these.
    Warning,
    /// A schedule defect: mode inconsistency, flow corruption, or a missed
    /// deadline. `dvsc verify --deny` exits nonzero iff any of these exist.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes produced by the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// V001: an elided mode-set is reachable in a mode other than its
    /// scheduled one, so the block behind it runs off-schedule.
    ModeConflict,
    /// V002: an emitted mode-set re-sets the mode already live on every
    /// path into its source block.
    RedundantSet,
    /// V003: an emitted mode-set whose target block executes no
    /// instructions before every outgoing edge re-sets the mode again.
    DeadSet,
    /// V004: a block the profile never executes (cold code).
    ColdCode,
    /// V005: profile edge counts violate Kirchhoff flow conservation.
    FlowViolation,
    /// V006: a mode-set on an unsplit critical edge (multi-successor
    /// source into multi-predecessor destination).
    CriticalEdgeSet,
    /// V007: mode churn in a hot loop where amortized switch energy
    /// exceeds the modeled savings over the best single in-loop mode.
    LoopChurn,
    /// V008: the profile-weighted modeled execution time exceeds the
    /// deadline.
    DeadlineModeled,
    /// V009: the all-paths worst-case execution time bound exceeds the
    /// deadline (the profiled paths themselves still fit).
    DeadlineWcet,
}

impl DiagCode {
    /// The stable `Vnnn` code string.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::ModeConflict => "V001",
            DiagCode::RedundantSet => "V002",
            DiagCode::DeadSet => "V003",
            DiagCode::ColdCode => "V004",
            DiagCode::FlowViolation => "V005",
            DiagCode::CriticalEdgeSet => "V006",
            DiagCode::LoopChurn => "V007",
            DiagCode::DeadlineModeled => "V008",
            DiagCode::DeadlineWcet => "V009",
        }
    }

    /// Short human title for the code.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::ModeConflict => "mode conflict",
            DiagCode::RedundantSet => "redundant mode-set",
            DiagCode::DeadSet => "dead mode-set",
            DiagCode::ColdCode => "cold code",
            DiagCode::FlowViolation => "profile flow violation",
            DiagCode::CriticalEdgeSet => "mode-set on unsplit critical edge",
            DiagCode::LoopChurn => "loop mode churn",
            DiagCode::DeadlineModeled => "modeled time exceeds deadline",
            DiagCode::DeadlineWcet => "worst-case bound exceeds deadline",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One verifier finding, anchored to a block and/or edge where applicable.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity; `--deny` gates on [`Severity::Error`] only.
    pub severity: Severity,
    /// Full human-readable message, location text included.
    pub message: String,
    /// The block this finding anchors to, if any.
    pub block: Option<BlockId>,
    /// The edge this finding anchors to, if any.
    pub edge: Option<EdgeId>,
}

impl Diagnostic {
    /// Builds a diagnostic with no location anchor.
    #[must_use]
    pub fn new(code: DiagCode, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            block: None,
            edge: None,
        }
    }

    /// Anchors the diagnostic to a block.
    #[must_use]
    pub fn at_block(mut self, b: BlockId) -> Self {
        self.block = Some(b);
        self
    }

    /// Anchors the diagnostic to an edge.
    #[must_use]
    pub fn at_edge(mut self, e: EdgeId) -> Self {
        self.edge = Some(e);
        self
    }

    /// One-line rendering: `error[V001] message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!("{}[{}] {}", self.severity, self.code, self.message)
    }

    /// JSON object with code, severity, message, and anchors.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code", Json::from(self.code.code())),
            ("title", Json::from(self.code.title())),
            ("severity", Json::from(self.severity.to_string())),
            ("message", Json::from(self.message.as_str())),
        ];
        if let Some(b) = self.block {
            fields.push(("block", Json::from(b.0 as u64)));
        }
        if let Some(e) = self.edge {
            fields.push(("edge", Json::from(e.0 as u64)));
        }
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_most_severe_last() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            DiagCode::ModeConflict,
            DiagCode::RedundantSet,
            DiagCode::DeadSet,
            DiagCode::ColdCode,
            DiagCode::FlowViolation,
            DiagCode::CriticalEdgeSet,
            DiagCode::LoopChurn,
            DiagCode::DeadlineModeled,
            DiagCode::DeadlineWcet,
        ];
        let codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        assert_eq!(codes[0], "V001");
        assert_eq!(codes[8], "V009");
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn render_and_json_round_out() {
        let d = Diagnostic::new(DiagCode::ModeConflict, Severity::Error, "boom")
            .at_block(BlockId(3))
            .at_edge(EdgeId(7));
        assert_eq!(d.render(), "error[V001] boom");
        let j = d.to_json();
        assert_eq!(j.get("code").and_then(Json::as_str), Some("V001"));
        assert_eq!(j.get("block").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("edge").and_then(Json::as_u64), Some(7));
    }
}
