//! Static verification of compile-time DVS schedules.
//!
//! The MILP (paper §4–§5) and the emit pass place mode-set instructions on
//! CFG edges using *profile* weights; the dynamic oracles in `dvs-check`
//! validate schedules only on specific traces. This crate closes the gap
//! with a classic static-analysis pass over `(Cfg, Profile, Schedule)`:
//!
//! * [`ModeFlow`] — a forward meet-over-all-paths dataflow over possible-
//!   mode sets proving **mode confluence** (every path reaching an elided
//!   mode-set is already in its scheduled mode, so the emitted binary
//!   never runs a block off-schedule), run twice: once over all CFG paths
//!   and once restricted to profile-executed local paths;
//! * [`compute_wcet`] — a **worst-case deadline check**: longest path over
//!   the loop-collapsed DAG with per-block times at every mode the
//!   dataflow admits, profile-derived trip bounds, and `ST` switch time
//!   on emitted edges;
//! * [`verify`] — the full lint set with stable codes `V001`–`V009`
//!   ([`DiagCode`]), from redundant/dead mode-sets through loop mode
//!   churn to deadline violations, rendered as text or JSON;
//! * [`replay_check`] — the dynamic complement: measured time/energy for a
//!   concrete trace via the `dvs-replay` bytecode fast path, with the
//!   cycle-level simulator retained as a 1e-6 cross-checking oracle.
//!
//! Severity is deliberate: only provable defects (executed-path mode
//! conflicts, flow corruption, modeled deadline misses) are
//! [`Severity::Error`] and gate `dvsc verify --deny`; everything the
//! compiler legitimately produces (cold-path ambiguity, conservative WCET
//! overruns) stays a warning or info.
//!
//! ```
//! use dvs_ir::{CfgBuilder, ProfileBuilder, BlockModeCost};
//! use dvs_sim::EdgeSchedule;
//! use dvs_vf::{AlphaPower, ModeId, TransitionModel, VoltageLadder};
//! use dvs_verify::{verify, VerifyInput};
//!
//! let mut b = CfgBuilder::new("g");
//! let e = b.block("entry");
//! let x = b.block("exit");
//! b.edge(e, x);
//! let cfg = b.finish(e, x).unwrap();
//! let mut pb = ProfileBuilder::new(&cfg, 2);
//! for blk in [e, x] {
//!     for m in 0..2 {
//!         pb.set_block_cost(blk, m, BlockModeCost { time_us: 1.0, energy_uj: 1.0 });
//!     }
//! }
//! pb.record_walk(&cfg, &[e, x]);
//! let profile = pb.finish();
//! let ladder = VoltageLadder::from_frequencies(&AlphaPower::paper(), &[100.0, 200.0]).unwrap();
//! let report = verify(&VerifyInput {
//!     cfg: &cfg,
//!     profile: &profile,
//!     ladder: &ladder,
//!     transition: &TransitionModel::free(),
//!     schedule: &EdgeSchedule::uniform(&cfg, ModeId(1)),
//!     emitted: None,
//!     deadline_us: Some(10.0),
//! });
//! assert!(report.ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataflow;
mod diag;
mod replay_check;
mod verifier;
mod wcet;

pub use dataflow::ModeFlow;
pub use diag::{DiagCode, Diagnostic, Severity};
pub use replay_check::{replay_check, ReplayCheck, REPLAY_ORACLE_REL};
pub use verifier::{verify, VerifyInput, VerifyReport};
pub use wcet::{compute_wcet, WcetReport};
