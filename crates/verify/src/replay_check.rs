//! Dynamic replay check: scores the schedule on a concrete trace via the
//! `dvs-replay` bytecode fast path, optionally cross-checked against the
//! cycle-level simulator.
//!
//! The static pass in this crate models time from profile tables; this
//! module complements it with *measured* time/energy for one input. The
//! bytecode interpreter is the default evaluator (orders of magnitude
//! cheaper than the simulator); with `oracle` enabled the full simulator
//! replays the same schedule and any disagreement beyond 1e-6 relative is
//! reported — the oracle hierarchy's "trust but verify" rung between the
//! bytecode and the MILP prediction.

use dvs_sim::{EdgeSchedule, Machine, ScheduledRun, Trace};
use dvs_vf::{TransitionModel, VoltageLadder};

/// Tolerance of the bytecode-vs-simulator cross-check, relative.
pub const REPLAY_ORACLE_REL: f64 = 1e-6;

/// Outcome of replaying a schedule on one trace.
#[derive(Debug, Clone)]
pub struct ReplayCheck {
    /// The bytecode evaluation (the fast path's answer).
    pub run: ScheduledRun,
    /// Whether the cycle-level simulator was consulted as an oracle.
    pub oracle_checked: bool,
    /// Fields where the bytecode and the simulator disagreed beyond
    /// [`REPLAY_ORACLE_REL`] — empty means the fast path is certified for
    /// this trace. Always empty when `oracle_checked` is `false`.
    pub disagreements: Vec<String>,
}

impl ReplayCheck {
    /// `true` when no oracle disagreement was observed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Replays `schedule` over `trace` via compiled bytecode; when `oracle` is
/// set, also replays it on the cycle-level simulator and records any field
/// diverging beyond [`REPLAY_ORACLE_REL`].
///
/// # Panics
///
/// Panics if the schedule does not cover every CFG edge or the trace is
/// inconsistent with `cfg` (same contracts as the simulator).
#[must_use]
pub fn replay_check(
    machine: &Machine,
    cfg: &dvs_ir::Cfg,
    trace: &Trace,
    ladder: &VoltageLadder,
    transition: &TransitionModel,
    schedule: &EdgeSchedule,
    oracle: bool,
) -> ReplayCheck {
    let code = dvs_replay::compile(machine, cfg, trace, ladder, transition);
    let run = code.replay(schedule);
    let mut disagreements = Vec::new();
    if oracle {
        let sim = machine.run_scheduled(cfg, trace, ladder, schedule, transition);
        let fields = [
            ("time_us", run.time_us, sim.time_us),
            (
                "processor_energy_uj",
                run.processor_energy_uj,
                sim.processor_energy_uj,
            ),
            ("dram_energy_uj", run.dram_energy_uj, sim.dram_energy_uj),
            (
                "transition_energy_uj",
                run.transition_energy_uj,
                sim.transition_energy_uj,
            ),
            (
                "transition_time_us",
                run.transition_time_us,
                sim.transition_time_us,
            ),
        ];
        for (name, got, want) in fields {
            if (got - want).abs() > REPLAY_ORACLE_REL * want.abs().max(1e-9) {
                disagreements.push(format!("{name}: bytecode {got:.9} vs simulator {want:.9}"));
            }
        }
        if run.transitions != sim.transitions {
            disagreements.push(format!(
                "transitions: bytecode {} vs simulator {}",
                run.transitions, sim.transitions
            ));
        }
    }
    ReplayCheck {
        run,
        oracle_checked: oracle,
        disagreements,
    }
}
