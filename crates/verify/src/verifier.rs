//! The verification pass: runs the dataflow, the WCET bound, and the lint
//! set over one `(Cfg, Profile, Schedule)` triple and assembles a report.

use crate::dataflow::ModeFlow;
use crate::diag::{DiagCode, Diagnostic, Severity};
use crate::wcet::{compute_wcet, WcetReport};
use dvs_ir::{BlockId, Cfg, Dominators, EdgeId, LoopForest, PostDominators, Profile};
use dvs_obs::json::Json;
use dvs_sim::EdgeSchedule;
use dvs_vf::{ModeId, TransitionModel, VoltageLadder};
use std::collections::{BTreeMap, BTreeSet};

/// Everything the verifier looks at. Borrowed, cheap to construct.
#[derive(Debug, Clone, Copy)]
pub struct VerifyInput<'a> {
    /// The control-flow graph.
    pub cfg: &'a Cfg,
    /// Profile weights and per-block mode cost tables.
    pub profile: &'a Profile,
    /// The voltage/frequency ladder the schedule indexes into.
    pub ladder: &'a VoltageLadder,
    /// Regulator transition cost model (`SE`/`ST`).
    pub transition: &'a TransitionModel,
    /// The per-edge mode schedule under verification.
    pub schedule: &'a EdgeSchedule,
    /// Which edges carry an actual mode-set instruction after silent-set
    /// elision; `None` means every edge does (naive placement).
    pub emitted: Option<&'a [bool]>,
    /// Deadline to prove, in µs; `None` skips the deadline checks.
    pub deadline_us: Option<f64>,
}

/// The verifier's findings plus the analyses behind them.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// All findings, most severe first (then by code, then by location).
    pub diagnostics: Vec<Diagnostic>,
    /// The static worst-case bound and its critical path.
    pub wcet: WcetReport,
    /// Profile-weighted execution time of the *effective* schedule (what
    /// the emitted binary actually runs, mode states from the executed-
    /// paths dataflow), in µs.
    pub modeled_time_us: f64,
    /// The deadline the report was checked against, if any.
    pub deadline_us: Option<f64>,
    /// The mode dataflow, exposed for rendering overlays.
    pub flow: ModeFlow,
}

impl VerifyReport {
    /// `true` when no [`Severity::Error`] diagnostics exist — the gate
    /// `dvsc verify --deny` and `CompilerBuilder::verify_emitted` use.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Number of diagnostics at `sev`.
    #[must_use]
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Diagnostics at [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Deterministic human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.render());
            s.push('\n');
        }
        s.push_str(&format!(
            "modeled time {:.3} us; wcet bound {:.3} us",
            self.modeled_time_us, self.wcet.bound_us
        ));
        if let Some(d) = self.deadline_us {
            s.push_str(&format!("; deadline {d:.3} us"));
        }
        s.push('\n');
        s.push_str(&format!(
            "{} errors, {} warnings, {} infos\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        s
    }

    /// Machine-readable JSON form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            ("errors", Json::from(self.count(Severity::Error) as u64)),
            ("warnings", Json::from(self.count(Severity::Warning) as u64)),
            ("infos", Json::from(self.count(Severity::Info) as u64)),
            ("modeled_time_us", Json::from(self.modeled_time_us)),
            (
                "wcet",
                Json::obj([
                    ("bound_us", Json::from(self.wcet.bound_us)),
                    (
                        "critical_path",
                        Json::Arr(
                            self.wcet
                                .critical_path
                                .iter()
                                .map(|l| Json::from(l.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "loop_bounds",
                        Json::Arr(
                            self.wcet
                                .loop_bounds
                                .iter()
                                .map(|(h, n)| {
                                    Json::obj([
                                        ("header", Json::from(h.0 as u64)),
                                        ("bound", Json::from(*n)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ];
        if let Some(d) = self.deadline_us {
            fields.push(("deadline_us", Json::from(d)));
        }
        Json::obj(fields)
    }
}

fn set_text(s: &BTreeSet<usize>) -> String {
    let inner: Vec<String> = s.iter().map(|m| format!("m{m}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// Runs the full verification pass.
#[must_use]
pub fn verify(input: &VerifyInput<'_>) -> VerifyReport {
    let _span = dvs_obs::span("verify.run");
    let cfg = input.cfg;
    let profile = input.profile;
    let schedule = input.schedule;
    let emit = |e: EdgeId| {
        input
            .emitted
            .is_none_or(|m| m.get(e.index()).copied().unwrap_or(true))
    };
    let edge_text = |e: EdgeId| {
        let edge = cfg.edge(e);
        format!(
            "{} ({} -> {})",
            e,
            cfg.block(edge.src).label,
            cfg.block(edge.dst).label
        )
    };

    let mut diags: Vec<Diagnostic> = Vec::new();

    // Malformed-input guard: a schedule that does not match the CFG or
    // ladder cannot be analysed further.
    if schedule.edge_modes.len() != cfg.num_edges()
        || input.emitted.is_some_and(|m| m.len() != cfg.num_edges())
        || schedule
            .edge_modes
            .iter()
            .chain(std::iter::once(&schedule.initial))
            .any(|m| m.index() >= input.ladder.len() || m.index() >= profile.num_modes())
    {
        let d = Diagnostic::new(
            DiagCode::FlowViolation,
            Severity::Error,
            format!(
                "malformed input: schedule covers {} edges with {} ladder levels, \
                 CFG has {} edges and the profile {} modes",
                schedule.edge_modes.len(),
                input.ladder.len(),
                cfg.num_edges(),
                profile.num_modes()
            ),
        );
        return VerifyReport {
            diagnostics: vec![d],
            wcet: WcetReport {
                bound_us: f64::INFINITY,
                critical_path: Vec::new(),
                loop_bounds: Vec::new(),
            },
            modeled_time_us: f64::INFINITY,
            deadline_us: input.deadline_us,
            flow: ModeFlow {
                all_edge: Vec::new(),
                all_block: Vec::new(),
                exec_edge: Vec::new(),
                exec_block: Vec::new(),
            },
        };
    }

    // V005: Kirchhoff flow conservation.
    if let Err(e) = profile.validate(cfg) {
        diags.push(Diagnostic::new(
            DiagCode::FlowViolation,
            Severity::Error,
            format!("profile violates flow conservation: {e}"),
        ));
    }

    let flow = ModeFlow::compute(cfg, profile, schedule, input.emitted);
    let initial = schedule.initial.index();

    // V001: mode confluence. A block entered through different *emitted*
    // mode-sets legitimately runs under each edge's mode — that is the
    // schedule. The invariant is on *elided* sets: every path reaching an
    // elided edge must already be in the scheduled mode, otherwise the
    // binary diverges from the schedule the costs were proven against.
    // Executed-path divergence is a defect; divergence confined to
    // unprofiled paths (where elision is vacuously silent) is
    // informational.
    for e in cfg.edges() {
        if emit(e.id) {
            continue;
        }
        let m = schedule.edge_modes[e.id.index()].index();
        let exec = &flow.exec_edge[e.id.index()];
        let all = &flow.all_edge[e.id.index()];
        if exec.iter().any(|&s| s != m) {
            diags.push(
                Diagnostic::new(
                    DiagCode::ModeConflict,
                    Severity::Error,
                    format!(
                        "elided mode-set m{m} on {} is not silent: executed paths \
                         arrive at modes {}, so `{}` runs off-schedule",
                        edge_text(e.id),
                        set_text(exec),
                        cfg.block(e.dst).label
                    ),
                )
                .at_edge(e.id),
            );
        } else if all.iter().any(|&s| s != m) {
            diags.push(
                Diagnostic::new(
                    DiagCode::ModeConflict,
                    Severity::Info,
                    format!(
                        "elided mode-set m{m} on {} diverges only on unprofiled \
                         paths (reachable modes {})",
                        edge_text(e.id),
                        set_text(all)
                    ),
                )
                .at_edge(e.id),
            );
        }
    }

    // V002/V003/V006: per emitted mode-set lints.
    for e in cfg.edges() {
        if !emit(e.id) {
            continue;
        }
        let m = schedule.edge_modes[e.id.index()].index();
        let src_state = &flow.all_block[e.src.0];
        if src_state.len() == 1 && src_state.contains(&m) {
            diags.push(
                Diagnostic::new(
                    DiagCode::RedundantSet,
                    Severity::Warning,
                    format!(
                        "mode-set m{m} on {} re-sets the mode already live on every path",
                        edge_text(e.id)
                    ),
                )
                .at_edge(e.id),
            );
        }
        let dst = cfg.block(e.dst);
        let overwritten = dst.is_empty() && e.dst != cfg.exit() && cfg.out_edges(e.dst).all(&emit);
        if overwritten {
            diags.push(
                Diagnostic::new(
                    DiagCode::DeadSet,
                    Severity::Warning,
                    format!(
                        "mode-set m{m} on {} is dead: `{}` executes nothing and every \
                         outgoing edge re-sets the mode",
                        edge_text(e.id),
                        dst.label
                    ),
                )
                .at_edge(e.id),
            );
        }
        if cfg.out_edges(e.src).count() > 1 && cfg.in_edges(e.dst).count() > 1 {
            diags.push(
                Diagnostic::new(
                    DiagCode::CriticalEdgeSet,
                    Severity::Warning,
                    format!(
                        "mode-set m{m} on unsplit critical edge {}: needs a split block \
                         to be addressable in a binary",
                        edge_text(e.id)
                    ),
                )
                .at_edge(e.id),
            );
        }
    }

    // V004: cold code.
    for b in cfg.blocks() {
        if profile.block_count(b.id) == 0 {
            diags.push(
                Diagnostic::new(
                    DiagCode::ColdCode,
                    Severity::Info,
                    format!("block `{}` is never executed in the profile", b.label),
                )
                .at_block(b.id),
            );
        }
    }

    // V007: loop churn. For each executed merged loop, compare the
    // scheduled body energy plus amortized switch energy against running
    // the whole body at the best single in-loop mode.
    let dom = Dominators::compute(cfg);
    let pdom = PostDominators::compute(cfg);
    let forest = LoopForest::compute(cfg, &dom);
    let mut merged: BTreeMap<BlockId, (BTreeSet<BlockId>, Vec<BlockId>)> = BTreeMap::new();
    for l in forest.loops() {
        let slot = merged.entry(l.header).or_default();
        slot.0.extend(l.body.iter().copied());
        slot.1.push(l.latch);
    }
    for (h, (body, latches)) in &merged {
        let back: u64 = cfg
            .in_edges(*h)
            .filter(|&e| body.contains(&cfg.edge(e).src))
            .map(|e| profile.edge_count(e))
            .sum();
        if back == 0 {
            continue; // cold or single-shot loop: nothing to amortize
        }
        let mut switch_energy = 0.0;
        let mut mandatory = 0usize;
        let mut conditional = 0usize;
        for e in cfg.edges() {
            if !emit(e.id) || !body.contains(&e.src) || !body.contains(&e.dst) {
                continue;
            }
            let m = schedule.edge_modes[e.id.index()];
            let worst = flow.exec_block[e.src.0]
                .iter()
                .filter(|&&s| s != m.index())
                .map(|&s| input.transition.mode_energy_uj(input.ladder, ModeId(s), m))
                .fold(0.0_f64, f64::max);
            if worst > 0.0 {
                switch_energy += profile.edge_count(e.id) as f64 * worst;
                let on_spine = latches.iter().all(|&l| dom.dominates(e.src, l))
                    && pdom.postdominates(e.dst, e.src);
                if on_spine {
                    mandatory += 1;
                } else {
                    conditional += 1;
                }
            }
        }
        if switch_energy <= 0.0 {
            continue;
        }
        let scheduled: f64 = body
            .iter()
            .map(|&b| {
                cfg.in_edges(b)
                    .map(|e| {
                        profile.edge_count(e) as f64
                            * profile
                                .block_cost(b, schedule.edge_modes[e.index()].index())
                                .energy_uj
                    })
                    .sum::<f64>()
            })
            .sum();
        let modes_used: BTreeSet<usize> = cfg
            .edges()
            .filter(|e| body.contains(&e.dst) && profile.edge_count(e.id) > 0)
            .map(|e| schedule.edge_modes[e.id.index()].index())
            .collect();
        let best_single = modes_used
            .iter()
            .map(|&m| {
                body.iter()
                    .map(|&b| profile.block_count(b) as f64 * profile.block_cost(b, m).energy_uj)
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        if scheduled + switch_energy > best_single + 1e-9 {
            diags.push(
                Diagnostic::new(
                    DiagCode::LoopChurn,
                    Severity::Warning,
                    format!(
                        "loop at `{}` churns modes: scheduled {:.3} uJ + {:.3} uJ switches \
                         exceeds {:.3} uJ at the best single mode \
                         ({mandatory} mandatory, {conditional} conditional switches)",
                        cfg.block(*h).label,
                        scheduled,
                        switch_energy,
                        best_single
                    ),
                )
                .at_block(*h),
            );
        }
    }

    // Effective modeled time: per-edge block times at the executed-paths
    // mode states plus switch time per executed local path into an
    // emitted edge. On a clean hoisted schedule every `S(e)` is the
    // nominal singleton, making this identical to the dynamic cost model.
    let mut modeled =
        profile.block_count(cfg.entry()) as f64 * profile.block_cost(cfg.entry(), initial).time_us;
    for e in cfg.edges() {
        let g = profile.edge_count(e.id);
        if g == 0 {
            continue;
        }
        let states = &flow.exec_edge[e.id.index()];
        let worst = if states.is_empty() {
            profile
                .block_cost(e.dst, schedule.edge_modes[e.id.index()].index())
                .time_us
        } else {
            states
                .iter()
                .map(|&m| profile.block_cost(e.dst, m).time_us)
                .fold(0.0_f64, f64::max)
        };
        modeled += g as f64 * worst;
    }
    for (path, d) in profile.local_paths() {
        if d == 0 {
            continue;
        }
        let Some(exit) = path.exit else { continue };
        if !emit(exit) {
            continue;
        }
        let target = schedule.edge_modes[exit.index()];
        let in_states: BTreeSet<usize> = match path.enter {
            Some(h) => flow.exec_edge[h.index()].clone(),
            None => std::iter::once(initial).collect(),
        };
        let worst = in_states
            .iter()
            .filter(|&&m| m != target.index())
            .map(|&m| {
                input
                    .transition
                    .mode_time_us(input.ladder, ModeId(m), target)
            })
            .fold(0.0_f64, f64::max);
        modeled += d as f64 * worst;
    }

    // V008/V009: deadline checks against modeled time and the all-paths
    // WCET bound.
    let wcet = compute_wcet(
        cfg,
        profile,
        input.ladder,
        input.transition,
        schedule,
        input.emitted,
        &flow,
    );
    if let Some(deadline) = input.deadline_us {
        let slack = 1e-6 + deadline * 1e-9;
        if modeled > deadline + slack {
            diags.push(Diagnostic::new(
                DiagCode::DeadlineModeled,
                Severity::Error,
                format!(
                    "modeled execution time {modeled:.3} us exceeds the deadline \
                     {deadline:.3} us on profiled paths"
                ),
            ));
        } else if wcet.bound_us > deadline + slack {
            diags.push(Diagnostic::new(
                DiagCode::DeadlineWcet,
                Severity::Warning,
                format!(
                    "worst-case bound {:.3} us exceeds the deadline {deadline:.3} us \
                     (critical path: {})",
                    wcet.bound_us,
                    wcet.critical_path.join(" -> ")
                ),
            ));
        }
    }

    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.code.cmp(&b.code))
            .then(a.edge.cmp(&b.edge))
            .then(a.block.cmp(&b.block))
    });
    let report = VerifyReport {
        diagnostics: diags,
        wcet,
        modeled_time_us: modeled,
        deadline_us: input.deadline_us,
        flow,
    };
    if dvs_obs::enabled() {
        dvs_obs::counter("verify.errors", report.count(Severity::Error) as u64);
        dvs_obs::counter("verify.warnings", report.count(Severity::Warning) as u64);
        dvs_obs::counter("verify.infos", report.count(Severity::Info) as u64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, Inst, Opcode, ProfileBuilder, Reg};
    use dvs_vf::AlphaPower;

    fn ladder() -> VoltageLadder {
        VoltageLadder::from_frequencies(&AlphaPower::paper(), &[100.0, 200.0]).unwrap()
    }

    /// Diamond with arms at different modes and no re-set at the join.
    fn conflicted() -> (Cfg, Profile, EdgeSchedule, Vec<bool>) {
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let t = b.block("t");
        let f = b.block("f");
        let x = b.block("exit");
        for blk in [e, t, f, x] {
            b.push(blk, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(0)]));
        }
        b.edge(e, t);
        b.edge(e, f);
        b.edge(t, x);
        b.edge(f, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 2);
        for blk in cfg.blocks() {
            for m in 0..2 {
                pb.set_block_cost(
                    blk.id,
                    m,
                    BlockModeCost {
                        time_us: if m == 0 { 2.0 } else { 1.0 },
                        energy_uj: 1.0,
                    },
                );
            }
        }
        pb.record_walk(&cfg, &[e, t, x]);
        pb.record_walk(&cfg, &[e, f, x]);
        let profile = pb.finish();
        let e_t = cfg.edge_between(e, t).unwrap();
        let e_f = cfg.edge_between(e, f).unwrap();
        let mut schedule = EdgeSchedule::uniform(&cfg, ModeId(0));
        schedule.edge_modes[e_t.index()] = ModeId(1);
        schedule.edge_modes[e_f.index()] = ModeId(0);
        let emitted: Vec<bool> = cfg.edges().map(|ed| ed.id == e_t || ed.id == e_f).collect();
        (cfg, profile, schedule, emitted)
    }

    #[test]
    fn executed_mode_conflict_is_an_error() {
        let (cfg, profile, schedule, emitted) = conflicted();
        let report = verify(&VerifyInput {
            cfg: &cfg,
            profile: &profile,
            ladder: &ladder(),
            transition: &TransitionModel::free(),
            schedule: &schedule,
            emitted: Some(&emitted),
            deadline_us: None,
        });
        assert!(!report.ok());
        let err = report.errors().next().unwrap();
        assert_eq!(err.code, DiagCode::ModeConflict);
        assert!(err.message.contains("m0"), "{}", err.message);
        assert!(err.message.contains("m1"), "{}", err.message);
    }

    #[test]
    fn uniform_schedule_is_clean() {
        let (cfg, profile, _, _) = conflicted();
        let schedule = EdgeSchedule::uniform(&cfg, ModeId(1));
        // Naive placement: every edge emitted. The only findings should be
        // redundant-set warnings, never errors.
        let report = verify(&VerifyInput {
            cfg: &cfg,
            profile: &profile,
            ladder: &ladder(),
            transition: &TransitionModel::free(),
            schedule: &schedule,
            emitted: None,
            deadline_us: Some(100.0),
        });
        assert!(report.ok(), "{}", report.render());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::RedundantSet));
        // 4 executed block visits at 1 µs each... entry + one arm + exit
        // per walk, two walks = 6 µs at mode 1.
        assert!(
            (report.modeled_time_us - 6.0).abs() < 1e-9,
            "{}",
            report.modeled_time_us
        );
    }

    #[test]
    fn modeled_deadline_violation_is_an_error() {
        let (cfg, profile, _, _) = conflicted();
        let schedule = EdgeSchedule::uniform(&cfg, ModeId(0)); // slow mode
        let report = verify(&VerifyInput {
            cfg: &cfg,
            profile: &profile,
            ladder: &ladder(),
            transition: &TransitionModel::free(),
            schedule: &schedule,
            emitted: None,
            deadline_us: Some(10.0), // 12 µs at mode 0 over two walks
        });
        assert!(!report.ok());
        assert!(report.errors().any(|d| d.code == DiagCode::DeadlineModeled));
    }

    #[test]
    fn wcet_only_violation_is_a_warning() {
        // Profile takes the short arm, the long arm busts the deadline
        // only in the all-paths bound.
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let long = b.block("long");
        let short = b.block("short");
        let x = b.block("exit");
        b.edge(e, long);
        b.edge(e, short);
        b.edge(long, x);
        b.edge(short, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 1);
        for (blk, t) in [(e, 1.0), (long, 50.0), (short, 1.0), (x, 1.0)] {
            pb.set_block_cost(
                blk,
                0,
                BlockModeCost {
                    time_us: t,
                    energy_uj: 1.0,
                },
            );
        }
        pb.record_walk(&cfg, &[e, short, x]);
        let profile = pb.finish();
        let schedule = EdgeSchedule::uniform(&cfg, ModeId(0));
        let report = verify(&VerifyInput {
            cfg: &cfg,
            profile: &profile,
            ladder: &ladder(),
            transition: &TransitionModel::free(),
            schedule: &schedule,
            emitted: None,
            deadline_us: Some(10.0),
        });
        assert!(
            report.ok(),
            "wcet violations do not gate: {}",
            report.render()
        );
        let w: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::DeadlineWcet)
            .collect();
        assert_eq!(w.len(), 1);
        assert!(w[0].message.contains("long"), "{}", w[0].message);
        // V004 fired for the cold arm as info.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::ColdCode));
    }

    #[test]
    fn malformed_schedule_is_rejected() {
        let (cfg, profile, mut schedule, _) = conflicted();
        schedule.edge_modes.pop();
        let report = verify(&VerifyInput {
            cfg: &cfg,
            profile: &profile,
            ladder: &ladder(),
            transition: &TransitionModel::free(),
            schedule: &schedule,
            emitted: None,
            deadline_us: None,
        });
        assert!(!report.ok());
        assert!(report.render().contains("malformed input"));
    }

    #[test]
    fn json_report_is_parseable() {
        let (cfg, profile, schedule, emitted) = conflicted();
        let report = verify(&VerifyInput {
            cfg: &cfg,
            profile: &profile,
            ladder: &ladder(),
            transition: &TransitionModel::free(),
            schedule: &schedule,
            emitted: Some(&emitted),
            deadline_us: Some(10.0),
        });
        let j = Json::parse(&report.to_json().dump()).unwrap();
        assert!(j.get("errors").and_then(Json::as_u64).unwrap() >= 1);
        assert!(j.get("wcet").and_then(|w| w.get("bound_us")).is_some());
    }
}
