//! Static worst-case execution-time bound over the loop-collapsed DAG.
//!
//! Natural loops (merged per header) are collapsed innermost-first into
//! supernodes charged `N ×` their worst single-iteration cost, where the
//! trip bound `N = ⌈(X + K) / X⌉` comes from profile counts (`X` =
//! loop-entry traversals, `K` = back-edge traversals). The residual graph
//! is a DAG; the bound is its longest entry→exit path with per-block times
//! taken at the *worst mode that can be live* on any CFG path (from the
//! all-paths dataflow) and `ST` switch time charged on emitted edges.
//!
//! The bound is deliberately conservative, never exact:
//!
//! * block time is maxed over every mode the dataflow admits;
//! * each loop is charged `N` full iterations including the back-edge
//!   switch, though a real run pays the back edge at most `N − 1` times
//!   and exits partway through the last iteration;
//! * cold loops (never profiled) get `N = 1` — the bound only covers
//!   executions consistent with the profile's loop behaviour;
//! * profiles aggregating `R` runs multiply the whole bound by `R`, since
//!   deadlines in this system are checked against profile-total time.

use crate::dataflow::ModeFlow;
use dvs_ir::{BlockId, Cfg, Dominators, EdgeId, LoopForest, Profile};
use dvs_sim::EdgeSchedule;
use dvs_vf::{ModeId, TransitionModel, VoltageLadder};
use std::collections::{BTreeMap, BTreeSet};

/// The computed bound plus the evidence behind it.
#[derive(Debug, Clone)]
pub struct WcetReport {
    /// The worst-case bound in microseconds (`f64::INFINITY` when the
    /// residual graph is not acyclic, i.e. the CFG is irreducible).
    pub bound_us: f64,
    /// The critical path, entry to exit, as block labels; collapsed loops
    /// appear as `label×N`.
    pub critical_path: Vec<String>,
    /// Profile-derived trip bound per (merged) loop header.
    pub loop_bounds: Vec<(BlockId, u64)>,
}

struct WEdge {
    src: BlockId,
    dst: BlockId,
    st: f64,
}

/// Computes the loop-collapsed longest-path bound. `flow` must come from
/// [`ModeFlow::compute`] on the same `(cfg, schedule, emitted)` triple.
#[must_use]
pub fn compute_wcet(
    cfg: &Cfg,
    profile: &Profile,
    ladder: &VoltageLadder,
    transition: &TransitionModel,
    schedule: &EdgeSchedule,
    emitted: Option<&[bool]>,
    flow: &ModeFlow,
) -> WcetReport {
    let emit = |e: EdgeId| emitted.is_none_or(|m| m.get(e.index()).copied().unwrap_or(true));
    let initial = schedule.initial.index();

    // Node weight: worst time of the block over every mode the all-paths
    // dataflow admits on any in-edge. The entry runs at the initial mode.
    let mut weight: Vec<f64> = cfg
        .blocks()
        .map(|b| {
            if b.id == cfg.entry() {
                profile.block_cost(b.id, initial).time_us
            } else {
                cfg.in_edges(b.id)
                    .flat_map(|e| flow.all_edge[e.index()].iter().copied())
                    .map(|m| profile.block_cost(b.id, m).time_us)
                    .fold(0.0_f64, f64::max)
            }
        })
        .collect();

    // Edge weight: switch time on emitted edges, maxed over the modes that
    // can be live at the source.
    let st_of = |e: EdgeId| -> f64 {
        if !emit(e) {
            return 0.0;
        }
        let target = schedule.edge_modes[e.index()];
        flow.all_block[cfg.edge(e).src.0]
            .iter()
            .filter(|&&m| m != target.index())
            .map(|&m| transition.mode_time_us(ladder, ModeId(m), target))
            .fold(0.0_f64, f64::max)
    };

    // Merge natural loops sharing a header, then collapse innermost-first
    // (body-size ascending: nested inner bodies are strict subsets).
    let dom = Dominators::compute(cfg);
    let forest = LoopForest::compute(cfg, &dom);
    let mut merged: BTreeMap<BlockId, BTreeSet<BlockId>> = BTreeMap::new();
    for l in forest.loops() {
        merged
            .entry(l.header)
            .or_default()
            .extend(l.body.iter().copied());
    }
    let mut loops: Vec<(BlockId, BTreeSet<BlockId>)> = merged.into_iter().collect();
    loops.sort_by_key(|(h, body)| (body.len(), h.0));

    // Working graph: representative mapping + edge list with switch costs.
    let mut rep: Vec<BlockId> = (0..cfg.num_blocks()).map(BlockId).collect();
    let find = |rep: &[BlockId], mut b: BlockId| -> BlockId {
        while rep[b.0] != b {
            b = rep[b.0];
        }
        b
    };
    let mut edges: Vec<WEdge> = cfg
        .edges()
        .map(|e| WEdge {
            src: e.src,
            dst: e.dst,
            st: st_of(e.id),
        })
        .collect();
    let mut loop_bounds: Vec<(BlockId, u64)> = Vec::new();
    let mut display: Vec<String> = cfg.blocks().map(|b| b.label.clone()).collect();

    for (h, body) in loops {
        let members: BTreeSet<BlockId> = body.iter().map(|&b| find(&rep, b)).collect();
        // Trip bound from profile counts: X entries from outside, K
        // back-edge traversals.
        let mut entries = 0u64;
        let mut back = 0u64;
        for e in cfg.in_edges(h) {
            if body.contains(&cfg.edge(e).src) {
                back += profile.edge_count(e);
            } else {
                entries += profile.edge_count(e);
            }
        }
        let n = if entries == 0 {
            1
        } else {
            (entries + back).div_ceil(entries)
        };
        loop_bounds.push((h, n));

        // Worst single iteration: longest path from the header to any
        // member over internal forward edges (relaxation over an acyclic
        // subgraph needs at most |members| rounds), plus the costliest
        // back-edge switch.
        let mut dist: BTreeMap<BlockId, f64> = BTreeMap::new();
        dist.insert(h, weight[h.0]);
        for _ in 0..members.len() {
            let mut changed = false;
            for e in &edges {
                let (s, d) = (find(&rep, e.src), find(&rep, e.dst));
                if d == h || !members.contains(&s) || !members.contains(&d) {
                    continue; // back edge or external
                }
                if let Some(&ds) = dist.get(&s) {
                    let cand = ds + e.st + weight[d.0];
                    if dist.get(&d).is_none_or(|&cur| cand > cur) {
                        dist.insert(d, cand);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let body_worst = dist.values().copied().fold(weight[h.0], f64::max);
        let back_st = edges
            .iter()
            .filter(|e| find(&rep, e.dst) == h && members.contains(&find(&rep, e.src)))
            .map(|e| e.st)
            .fold(0.0_f64, f64::max);
        weight[h.0] = (n as f64) * (body_worst + back_st);
        display[h.0] = format!("{}\u{d7}{n}", cfg.block(h).label);

        // Absorb members into the header and rebuild the edge list:
        // internal edges vanish, exits re-source to the header.
        for &m in &members {
            if m != h {
                rep[m.0] = h;
            }
        }
        edges.retain(|e| find(&rep, e.src) != find(&rep, e.dst));
    }

    // Longest entry→exit path over the residual DAG (Kahn order), with
    // parent pointers for the critical path.
    let entry = find(&rep, cfg.entry());
    let exit = find(&rep, cfg.exit());
    let alive: BTreeSet<BlockId> = (0..cfg.num_blocks())
        .map(BlockId)
        .filter(|&b| find(&rep, b) == b)
        .collect();
    let resolved: Vec<(BlockId, BlockId, f64)> = edges
        .iter()
        .map(|e| (find(&rep, e.src), find(&rep, e.dst), e.st))
        .filter(|(s, d, _)| s != d)
        .collect();
    let mut indegree: BTreeMap<BlockId, usize> = alive.iter().map(|&b| (b, 0)).collect();
    for &(_, d, _) in &resolved {
        *indegree.get_mut(&d).expect("alive") += 1;
    }
    let mut queue: Vec<BlockId> = alive.iter().copied().filter(|b| indegree[b] == 0).collect();
    let mut order = Vec::with_capacity(alive.len());
    let mut indeg = indegree;
    while let Some(b) = queue.pop() {
        order.push(b);
        for &(s, d, _) in &resolved {
            if s == b {
                let c = indeg.get_mut(&d).expect("alive");
                *c -= 1;
                if *c == 0 {
                    queue.push(d);
                }
            }
        }
    }
    if order.len() != alive.len() {
        // Residual cycle: irreducible CFG. No finite bound.
        return WcetReport {
            bound_us: f64::INFINITY,
            critical_path: Vec::new(),
            loop_bounds,
        };
    }
    let mut dist: BTreeMap<BlockId, f64> = BTreeMap::new();
    let mut parent: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    dist.insert(entry, weight[entry.0]);
    for &b in &order {
        let Some(&db) = dist.get(&b) else { continue };
        for &(s, d, st) in &resolved {
            if s == b {
                let cand = db + st + weight[d.0];
                if dist.get(&d).is_none_or(|&cur| cand > cur) {
                    dist.insert(d, cand);
                    parent.insert(d, b);
                }
            }
        }
    }
    let runs = profile.block_count(cfg.entry()).max(1);
    let bound = dist.get(&exit).copied().unwrap_or(0.0) * runs as f64;
    let mut path = vec![exit];
    while let Some(&p) = parent.get(path.last().expect("nonempty")) {
        path.push(p);
    }
    path.reverse();
    WcetReport {
        bound_us: bound,
        critical_path: path.into_iter().map(|b| display[b.0].clone()).collect(),
        loop_bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, ProfileBuilder};

    fn ladder2() -> VoltageLadder {
        VoltageLadder::from_frequencies(&dvs_vf::AlphaPower::paper(), &[100.0, 200.0]).unwrap()
    }

    #[test]
    fn straight_line_bound_is_sum_of_block_times() {
        let mut b = CfgBuilder::new("s");
        let e = b.block("entry");
        let m = b.block("mid");
        let x = b.block("exit");
        b.edge(e, m);
        b.edge(m, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 2);
        for blk in cfg.blocks() {
            for mode in 0..2 {
                pb.set_block_cost(
                    blk.id,
                    mode,
                    BlockModeCost {
                        time_us: if mode == 0 { 4.0 } else { 2.0 },
                        energy_uj: 1.0,
                    },
                );
            }
        }
        pb.record_walk(&cfg, &[e, m, x]);
        let profile = pb.finish();
        let schedule = EdgeSchedule::uniform(&cfg, ModeId(1));
        let flow = ModeFlow::compute(&cfg, &profile, &schedule, None);
        let r = compute_wcet(
            &cfg,
            &profile,
            &ladder2(),
            &TransitionModel::free(),
            &schedule,
            None,
            &flow,
        );
        assert!((r.bound_us - 6.0).abs() < 1e-9, "{}", r.bound_us);
        assert_eq!(r.critical_path, vec!["entry", "mid", "exit"]);
        assert!(r.loop_bounds.is_empty());
    }

    #[test]
    fn loop_charged_n_iterations() {
        let mut b = CfgBuilder::new("l");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 1);
        for blk in cfg.blocks() {
            pb.set_block_cost(
                blk.id,
                0,
                BlockModeCost {
                    time_us: 1.0,
                    energy_uj: 1.0,
                },
            );
        }
        // Three iterations: X = 1 entry, K = 3 back edges, N = 4.
        pb.record_walk(&cfg, &[e, h, body, h, body, h, body, h, x]);
        let profile = pb.finish();
        let schedule = EdgeSchedule::uniform(&cfg, ModeId(0));
        let flow = ModeFlow::compute(&cfg, &profile, &schedule, None);
        let r = compute_wcet(
            &cfg,
            &profile,
            &ladder2(),
            &TransitionModel::free(),
            &schedule,
            None,
            &flow,
        );
        assert_eq!(r.loop_bounds, vec![(h, 4)]);
        // entry(1) + 4 × (head+body = 2) + exit(1) = 10.
        assert!((r.bound_us - 10.0).abs() < 1e-9, "{}", r.bound_us);
        assert!(r.critical_path.contains(&"head\u{d7}4".to_string()));
    }

    #[test]
    fn bound_dominates_profiled_time() {
        // Diamond with unequal arms: profile takes the short arm, the
        // bound must still charge the long one.
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let long = b.block("long");
        let short = b.block("short");
        let x = b.block("exit");
        b.edge(e, long);
        b.edge(e, short);
        b.edge(long, x);
        b.edge(short, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 1);
        for (blk, t) in [(e, 1.0), (long, 50.0), (short, 2.0), (x, 1.0)] {
            pb.set_block_cost(
                blk,
                0,
                BlockModeCost {
                    time_us: t,
                    energy_uj: 1.0,
                },
            );
        }
        pb.record_walk(&cfg, &[e, short, x]);
        let profile = pb.finish();
        let schedule = EdgeSchedule::uniform(&cfg, ModeId(0));
        let flow = ModeFlow::compute(&cfg, &profile, &schedule, None);
        let r = compute_wcet(
            &cfg,
            &profile,
            &ladder2(),
            &TransitionModel::free(),
            &schedule,
            None,
            &flow,
        );
        assert!((r.bound_us - 52.0).abs() < 1e-9, "{}", r.bound_us);
        assert!(r.bound_us >= profile.total_time_at(0));
        assert_eq!(r.critical_path, vec!["entry", "long", "exit"]);
    }
}
