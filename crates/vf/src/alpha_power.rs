use crate::VfError;
use dvs_obs::json::Json;

/// The Sakurai–Newton alpha-power law relating supply voltage to the maximum
/// clock frequency a CMOS circuit sustains:
///
/// ```text
/// f(v) = k · (v - vt)^a / v
/// ```
///
/// where `vt` is the device threshold voltage and `a` is a
/// technology-dependent velocity-saturation exponent (≈ 1.5 for the
/// technology generation the paper considers).
///
/// The constant `k` fixes the absolute frequency scale; [`AlphaPower::paper`]
/// calibrates it so that 1.65 V yields 800 MHz, matching the top of the
/// XScale-like ladder used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaPower {
    /// Technology exponent `a`.
    pub alpha: f64,
    /// Threshold voltage `vt` in volts.
    pub vt: f64,
    /// Scale constant `k` in MHz·V^(1-a)... fixed by calibration.
    pub k: f64,
}

impl AlphaPower {
    /// Paper parameters: `a = 1.5`, `vt = 0.45 V`, calibrated so that
    /// `f(1.65 V) = 800 MHz`.
    #[must_use]
    pub fn paper() -> Self {
        AlphaPower::calibrated(1.5, 0.45, 1.65, 800.0).expect("paper calibration point is valid")
    }

    /// Builds a law with exponent `alpha` and threshold `vt`, choosing `k`
    /// such that `f(v_ref) = f_ref_mhz`.
    ///
    /// # Errors
    ///
    /// Returns [`VfError::VoltageBelowThreshold`] if `v_ref <= vt`, and
    /// [`VfError::InvalidParameter`] for non-positive `alpha`, `vt`, or
    /// reference frequency.
    pub fn calibrated(alpha: f64, vt: f64, v_ref: f64, f_ref_mhz: f64) -> Result<Self, VfError> {
        if alpha <= 0.0 || alpha.is_nan() {
            return Err(VfError::InvalidParameter {
                name: "alpha",
                value: alpha,
            });
        }
        if vt <= 0.0 || vt.is_nan() {
            return Err(VfError::InvalidParameter {
                name: "vt",
                value: vt,
            });
        }
        if f_ref_mhz <= 0.0 || f_ref_mhz.is_nan() {
            return Err(VfError::InvalidParameter {
                name: "f_ref_mhz",
                value: f_ref_mhz,
            });
        }
        if v_ref <= vt {
            return Err(VfError::VoltageBelowThreshold {
                voltage: v_ref,
                threshold: vt,
            });
        }
        let k = f_ref_mhz * v_ref / (v_ref - vt).powf(alpha);
        Ok(AlphaPower { alpha, vt, k })
    }

    /// Maximum clock frequency (MHz) at supply voltage `v` (volts).
    ///
    /// # Errors
    ///
    /// Returns [`VfError::VoltageBelowThreshold`] if `v <= vt`.
    pub fn frequency_mhz(&self, v: f64) -> Result<f64, VfError> {
        if v <= self.vt {
            return Err(VfError::VoltageBelowThreshold {
                voltage: v,
                threshold: self.vt,
            });
        }
        Ok(self.k * (v - self.vt).powf(self.alpha) / v)
    }

    /// Inverts the law: the minimum supply voltage (volts) that sustains
    /// `f_mhz`. Solved numerically by bisection; `f(v)` is strictly
    /// increasing in `v` for `v > vt` whenever `a >= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`VfError::FrequencyOutOfRange`] for non-positive frequencies
    /// or frequencies above `f(100 V)` (far outside any physical range).
    pub fn voltage_for(&self, f_mhz: f64) -> Result<f64, VfError> {
        if f_mhz <= 0.0 || f_mhz.is_nan() {
            return Err(VfError::FrequencyOutOfRange {
                frequency_mhz: f_mhz,
            });
        }
        let mut lo = self.vt;
        let mut hi = 100.0;
        if self.frequency_mhz(hi).unwrap_or(0.0) < f_mhz {
            return Err(VfError::FrequencyOutOfRange {
                frequency_mhz: f_mhz,
            });
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            match self.frequency_mhz(mid) {
                Ok(f) if f < f_mhz => lo = mid,
                _ => hi = mid,
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Serializes the law's three parameters to a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("alpha", Json::from(self.alpha)),
            ("vt", Json::from(self.vt)),
            ("k", Json::from(self.k)),
        ])
    }

    /// Rebuilds a law from the JSON produced by [`AlphaPower::to_json`].
    ///
    /// # Errors
    ///
    /// [`VfError::Malformed`] when a field is missing or non-numeric.
    pub fn from_json(j: &Json) -> Result<Self, VfError> {
        let field = |name: &str| {
            j.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| VfError::Malformed(format!("missing or non-numeric `{name}`")))
        };
        Ok(AlphaPower {
            alpha: field("alpha")?,
            vt: field("vt")?,
            k: field("k")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_hits_800mhz_at_1_65v() {
        let law = AlphaPower::paper();
        let f = law.frequency_mhz(1.65).unwrap();
        assert!((f - 800.0).abs() < 1e-9, "f(1.65) = {f}");
    }

    #[test]
    fn paper_law_approximates_xscale_mid_and_low_points() {
        // The paper's ladder (0.7 V -> 200 MHz, 1.3 V -> 600 MHz) is "similar
        // to XScale", not exactly on the law; the law should land within ~12%.
        let law = AlphaPower::paper();
        let f13 = law.frequency_mhz(1.3).unwrap();
        assert!((f13 - 600.0).abs() / 600.0 < 0.05, "f(1.3) = {f13}");
        let f07 = law.frequency_mhz(0.7).unwrap();
        assert!((f07 - 200.0).abs() / 200.0 < 0.12, "f(0.7) = {f07}");
    }

    #[test]
    fn frequency_is_monotonic_in_voltage() {
        let law = AlphaPower::paper();
        let mut prev = 0.0;
        let mut v = 0.5;
        while v < 2.0 {
            let f = law.frequency_mhz(v).unwrap();
            assert!(f > prev, "not monotonic at v={v}");
            prev = f;
            v += 0.05;
        }
    }

    #[test]
    fn voltage_for_inverts_frequency() {
        let law = AlphaPower::paper();
        for &f in &[50.0, 200.0, 400.0, 600.0, 800.0, 1200.0] {
            let v = law.voltage_for(f).unwrap();
            let back = law.frequency_mhz(v).unwrap();
            assert!((back - f).abs() < 1e-6, "f={f} v={v} back={back}");
        }
    }

    #[test]
    fn below_threshold_is_rejected() {
        let law = AlphaPower::paper();
        assert!(matches!(
            law.frequency_mhz(0.45),
            Err(VfError::VoltageBelowThreshold { .. })
        ));
        assert!(matches!(
            law.frequency_mhz(0.1),
            Err(VfError::VoltageBelowThreshold { .. })
        ));
    }

    #[test]
    fn bad_calibration_parameters_are_rejected() {
        assert!(AlphaPower::calibrated(-1.0, 0.45, 1.65, 800.0).is_err());
        assert!(AlphaPower::calibrated(1.5, -0.1, 1.65, 800.0).is_err());
        assert!(AlphaPower::calibrated(1.5, 0.45, 0.4, 800.0).is_err());
        assert!(AlphaPower::calibrated(1.5, 0.45, 1.65, 0.0).is_err());
    }

    #[test]
    fn unreachable_frequency_is_rejected() {
        let law = AlphaPower::paper();
        assert!(law.voltage_for(0.0).is_err());
        assert!(law.voltage_for(1e12).is_err());
    }
}
