use std::fmt;

/// Errors produced when constructing voltage/frequency abstractions.
#[derive(Debug, Clone, PartialEq)]
pub enum VfError {
    /// A supply voltage at or below the threshold voltage cannot clock the
    /// device at any frequency.
    VoltageBelowThreshold {
        /// The offending supply voltage, in volts.
        voltage: f64,
        /// The device threshold voltage, in volts.
        threshold: f64,
    },
    /// A requested frequency is outside the range achievable over the
    /// ladder's voltage span.
    FrequencyOutOfRange {
        /// The requested frequency in MHz.
        frequency_mhz: f64,
    },
    /// A ladder needs at least two distinct operating points.
    LadderTooSmall {
        /// Number of levels requested.
        levels: usize,
    },
    /// Operating points must be strictly increasing in both voltage and
    /// frequency.
    NonMonotonicLadder,
    /// A physical parameter (capacitance, current, efficiency, ...) was not
    /// strictly positive or lay outside its valid interval.
    InvalidParameter {
        /// Human-readable name of the parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Serialized form could not be parsed or is missing fields.
    Malformed(String),
}

impl fmt::Display for VfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfError::VoltageBelowThreshold { voltage, threshold } => write!(
                f,
                "supply voltage {voltage} V is at or below the threshold {threshold} V"
            ),
            VfError::FrequencyOutOfRange { frequency_mhz } => {
                write!(f, "frequency {frequency_mhz} MHz is not achievable")
            }
            VfError::LadderTooSmall { levels } => {
                write!(f, "a voltage ladder needs at least 2 levels, got {levels}")
            }
            VfError::NonMonotonicLadder => {
                write!(f, "operating points must increase in voltage and frequency")
            }
            VfError::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
            VfError::Malformed(m) => write!(f, "malformed serialization: {m}"),
        }
    }
}

impl std::error::Error for VfError {}
