use crate::{AlphaPower, ModeId, OperatingPoint, VfError};
use dvs_obs::json::Json;

/// How a [`VoltageLadder`] should be generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderSpec {
    /// The paper's XScale-like 3-level ladder:
    /// 200 MHz @ 0.7 V, 600 MHz @ 1.3 V, 800 MHz @ 1.65 V.
    Xscale3,
    /// `n` levels with voltages evenly spaced over [0.7 V, 1.65 V] and
    /// frequencies from the alpha-power law, except that the three anchor
    /// levels shared with [`LadderSpec::Xscale3`] keep their exact paper
    /// frequencies when they coincide with a generated voltage.
    Interpolated(usize),
}

/// An ordered set of discrete `(V, f)` operating points, slowest first.
///
/// The paper studies ladders with 3, 7 and 13 levels; [`VoltageLadder`]
/// generates any size between the same endpoints using the alpha-power law.
///
/// # Example
///
/// ```
/// use dvs_vf::{AlphaPower, VoltageLadder};
/// let law = AlphaPower::paper();
/// let ladder = VoltageLadder::interpolated(&law, 7).unwrap();
/// assert_eq!(ladder.len(), 7);
/// assert!(ladder.slowest().frequency_mhz < ladder.fastest().frequency_mhz);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageLadder {
    points: Vec<OperatingPoint>,
}

impl VoltageLadder {
    /// Builds a ladder from explicit points, which must be strictly
    /// increasing in both voltage and frequency.
    ///
    /// # Errors
    ///
    /// [`VfError::LadderTooSmall`] for fewer than 2 points and
    /// [`VfError::NonMonotonicLadder`] if ordering is violated.
    pub fn from_points(points: Vec<OperatingPoint>) -> Result<Self, VfError> {
        if points.len() < 2 {
            return Err(VfError::LadderTooSmall {
                levels: points.len(),
            });
        }
        for w in points.windows(2) {
            if w[1].voltage <= w[0].voltage || w[1].frequency_mhz <= w[0].frequency_mhz {
                return Err(VfError::NonMonotonicLadder);
            }
        }
        Ok(VoltageLadder { points })
    }

    /// The paper's 3-level XScale-like ladder. The `law` argument is unused
    /// numerically (the paper fixes these pairs) but documents that the pairs
    /// approximately satisfy it.
    #[must_use]
    pub fn xscale3(_law: &AlphaPower) -> Self {
        VoltageLadder {
            points: vec![
                OperatingPoint::new(0.7, 200.0),
                OperatingPoint::new(1.3, 600.0),
                OperatingPoint::new(1.65, 800.0),
            ],
        }
    }

    /// A ladder of `levels` points with voltages evenly spaced over
    /// [0.7 V, 1.65 V] and frequencies from `law`.
    ///
    /// # Errors
    ///
    /// [`VfError::LadderTooSmall`] if `levels < 2`.
    pub fn interpolated(law: &AlphaPower, levels: usize) -> Result<Self, VfError> {
        if levels < 2 {
            return Err(VfError::LadderTooSmall { levels });
        }
        let (v_lo, v_hi) = (0.7, 1.65);
        let mut points = Vec::with_capacity(levels);
        for i in 0..levels {
            let v = v_lo + (v_hi - v_lo) * i as f64 / (levels - 1) as f64;
            let f = law.frequency_mhz(v)?;
            points.push(OperatingPoint::new(v, f));
        }
        VoltageLadder::from_points(points)
    }

    /// Builds a ladder whose levels sit at the given frequencies (MHz,
    /// strictly increasing), with voltages from the alpha-power law — e.g.
    /// to model a processor documented by frequency steps only.
    ///
    /// # Errors
    ///
    /// [`VfError::LadderTooSmall`] for fewer than two frequencies,
    /// [`VfError::NonMonotonicLadder`] if they are not strictly increasing,
    /// or [`VfError::FrequencyOutOfRange`] if the law cannot reach one.
    pub fn from_frequencies(law: &AlphaPower, freqs_mhz: &[f64]) -> Result<Self, VfError> {
        if freqs_mhz.len() < 2 {
            return Err(VfError::LadderTooSmall {
                levels: freqs_mhz.len(),
            });
        }
        let mut points = Vec::with_capacity(freqs_mhz.len());
        for &f in freqs_mhz {
            let v = law.voltage_for(f)?;
            points.push(OperatingPoint::new(v, f));
        }
        VoltageLadder::from_points(points)
    }

    /// Builds a ladder from a [`LadderSpec`].
    ///
    /// # Errors
    ///
    /// See [`VoltageLadder::interpolated`].
    pub fn from_spec(law: &AlphaPower, spec: LadderSpec) -> Result<Self, VfError> {
        match spec {
            LadderSpec::Xscale3 => Ok(VoltageLadder::xscale3(law)),
            LadderSpec::Interpolated(n) => VoltageLadder::interpolated(law, n),
        }
    }

    /// Number of levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`; ladders have at least two levels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The operating point for `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range for this ladder.
    #[must_use]
    pub fn point(&self, mode: ModeId) -> OperatingPoint {
        self.points[mode.0]
    }

    /// The slowest (lowest-voltage) point.
    #[must_use]
    pub fn slowest(&self) -> OperatingPoint {
        self.points[0]
    }

    /// The fastest (highest-voltage) point.
    #[must_use]
    pub fn fastest(&self) -> OperatingPoint {
        *self.points.last().expect("ladder is non-empty")
    }

    /// Iterates `(ModeId, OperatingPoint)` pairs slowest-first.
    pub fn iter(&self) -> impl Iterator<Item = (ModeId, OperatingPoint)> + '_ {
        self.points.iter().enumerate().map(|(i, p)| (ModeId(i), *p))
    }

    /// All mode ids, slowest first.
    pub fn modes(&self) -> impl Iterator<Item = ModeId> {
        (0..self.points.len()).map(ModeId)
    }

    /// The slowest mode whose frequency is at least `f_mhz`, or `None` if
    /// even the fastest mode is too slow.
    #[must_use]
    pub fn slowest_mode_at_least(&self, f_mhz: f64) -> Option<ModeId> {
        self.iter()
            .find(|(_, p)| p.frequency_mhz >= f_mhz)
            .map(|(m, _)| m)
    }

    /// Serializes the ladder as a JSON array of `{v, f_mhz}` objects,
    /// slowest first.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.points
                .iter()
                .map(|p| {
                    Json::obj([
                        ("v", Json::from(p.voltage)),
                        ("f_mhz", Json::from(p.frequency_mhz)),
                    ])
                })
                .collect(),
        )
    }

    /// Rebuilds a ladder from the JSON produced by [`VoltageLadder::to_json`],
    /// re-running the monotonicity validation.
    ///
    /// # Errors
    ///
    /// [`VfError::Malformed`] for shape errors, plus everything
    /// [`VoltageLadder::from_points`] rejects.
    pub fn from_json(j: &Json) -> Result<Self, VfError> {
        let arr = j
            .as_arr()
            .ok_or_else(|| VfError::Malformed("expected a JSON array of points".into()))?;
        let points = arr
            .iter()
            .map(|p| {
                let v = p.get("v").and_then(Json::as_f64);
                let f = p.get("f_mhz").and_then(Json::as_f64);
                match (v, f) {
                    (Some(v), Some(f)) => Ok(OperatingPoint::new(v, f)),
                    _ => Err(VfError::Malformed(
                        "point needs numeric `v` and `f_mhz`".into(),
                    )),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        VoltageLadder::from_points(points)
    }

    /// The discrete modes bracketing a continuous frequency: the fastest
    /// mode with `f <= f_mhz` and the slowest mode with `f >= f_mhz`.
    /// If `f_mhz` is outside the ladder range, both elements clamp to the
    /// nearest end. If `f_mhz` exactly matches a level, both are that level.
    #[must_use]
    pub fn neighbors(&self, f_mhz: f64) -> (ModeId, ModeId) {
        let n = self.points.len();
        if f_mhz <= self.points[0].frequency_mhz {
            return (ModeId(0), ModeId(0));
        }
        if f_mhz >= self.points[n - 1].frequency_mhz {
            return (ModeId(n - 1), ModeId(n - 1));
        }
        let mut below = 0;
        for (i, p) in self.points.iter().enumerate() {
            if p.frequency_mhz <= f_mhz {
                below = i;
            }
        }
        if (self.points[below].frequency_mhz - f_mhz).abs() < 1e-12 {
            (ModeId(below), ModeId(below))
        } else {
            (ModeId(below), ModeId(below + 1))
        }
    }
}

impl<'a> IntoIterator for &'a VoltageLadder {
    type Item = &'a OperatingPoint;
    type IntoIter = std::slice::Iter<'a, OperatingPoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn law() -> AlphaPower {
        AlphaPower::paper()
    }

    #[test]
    fn xscale3_matches_paper_values() {
        let l = VoltageLadder::xscale3(&law());
        assert_eq!(l.len(), 3);
        assert_eq!(l.point(ModeId(0)), OperatingPoint::new(0.7, 200.0));
        assert_eq!(l.point(ModeId(1)), OperatingPoint::new(1.3, 600.0));
        assert_eq!(l.point(ModeId(2)), OperatingPoint::new(1.65, 800.0));
    }

    #[test]
    fn interpolated_ladders_are_monotonic() {
        for n in [2, 3, 7, 13, 25] {
            let l = VoltageLadder::interpolated(&law(), n).unwrap();
            assert_eq!(l.len(), n);
            let pts: Vec<_> = l.iter().map(|(_, p)| p).collect();
            for w in pts.windows(2) {
                assert!(w[1].voltage > w[0].voltage);
                assert!(w[1].frequency_mhz > w[0].frequency_mhz);
            }
            assert!((pts[0].voltage - 0.7).abs() < 1e-12);
            assert!((pts[n - 1].voltage - 1.65).abs() < 1e-12);
            assert!((pts[n - 1].frequency_mhz - 800.0).abs() < 1e-9);
        }
    }

    #[test]
    fn too_small_ladders_rejected() {
        assert!(matches!(
            VoltageLadder::interpolated(&law(), 1),
            Err(VfError::LadderTooSmall { levels: 1 })
        ));
        assert!(VoltageLadder::from_points(vec![OperatingPoint::new(1.0, 100.0)]).is_err());
    }

    #[test]
    fn non_monotonic_rejected() {
        let pts = vec![
            OperatingPoint::new(1.0, 300.0),
            OperatingPoint::new(0.9, 400.0),
        ];
        assert!(matches!(
            VoltageLadder::from_points(pts),
            Err(VfError::NonMonotonicLadder)
        ));
        let pts = vec![
            OperatingPoint::new(1.0, 300.0),
            OperatingPoint::new(1.2, 300.0),
        ];
        assert!(VoltageLadder::from_points(pts).is_err());
    }

    #[test]
    fn slowest_mode_at_least_picks_correct_level() {
        let l = VoltageLadder::xscale3(&law());
        assert_eq!(l.slowest_mode_at_least(100.0), Some(ModeId(0)));
        assert_eq!(l.slowest_mode_at_least(200.0), Some(ModeId(0)));
        assert_eq!(l.slowest_mode_at_least(201.0), Some(ModeId(1)));
        assert_eq!(l.slowest_mode_at_least(600.0), Some(ModeId(1)));
        assert_eq!(l.slowest_mode_at_least(700.0), Some(ModeId(2)));
        assert_eq!(l.slowest_mode_at_least(801.0), None);
    }

    #[test]
    fn neighbors_bracket_frequency() {
        let l = VoltageLadder::xscale3(&law());
        assert_eq!(l.neighbors(400.0), (ModeId(0), ModeId(1)));
        assert_eq!(l.neighbors(600.0), (ModeId(1), ModeId(1)));
        assert_eq!(l.neighbors(700.0), (ModeId(1), ModeId(2)));
        assert_eq!(l.neighbors(100.0), (ModeId(0), ModeId(0)));
        assert_eq!(l.neighbors(900.0), (ModeId(2), ModeId(2)));
    }

    #[test]
    fn from_spec_dispatches() {
        let l3 = VoltageLadder::from_spec(&law(), LadderSpec::Xscale3).unwrap();
        assert_eq!(l3.len(), 3);
        let l7 = VoltageLadder::from_spec(&law(), LadderSpec::Interpolated(7)).unwrap();
        assert_eq!(l7.len(), 7);
    }

    #[test]
    fn from_frequencies_respects_law() {
        let law = law();
        let l = VoltageLadder::from_frequencies(&law, &[200.0, 400.0, 800.0]).unwrap();
        assert_eq!(l.len(), 3);
        for (_, p) in l.iter() {
            let back = law.frequency_mhz(p.voltage).unwrap();
            assert!((back - p.frequency_mhz).abs() < 1e-6);
        }
        assert!(VoltageLadder::from_frequencies(&law, &[200.0]).is_err());
        assert!(VoltageLadder::from_frequencies(&law, &[400.0, 200.0]).is_err());
        assert!(VoltageLadder::from_frequencies(&law, &[200.0, 1e12]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let l = VoltageLadder::xscale3(&law());
        let json = l.to_json().dump();
        let back = VoltageLadder::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(l, back);
        let law2 = law();
        let json = law2.to_json().dump();
        let back = AlphaPower::from_json(&Json::parse(&json).unwrap()).unwrap();
        // JSON round-trips f64 to ~17 significant digits; allow 1 ulp-ish.
        assert!((law2.k - back.k).abs() < 1e-9);
        assert_eq!(law2.alpha, back.alpha);
        assert_eq!(law2.vt, back.vt);
        // A deserialized non-monotonic ladder is rejected by validation.
        let bad = r#"[{"v":1.0,"f_mhz":400.0},{"v":0.9,"f_mhz":500.0}]"#;
        assert!(VoltageLadder::from_json(&Json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn iteration_orders_slowest_first() {
        let l = VoltageLadder::xscale3(&law());
        let modes: Vec<_> = l.modes().collect();
        assert_eq!(modes, vec![ModeId(0), ModeId(1), ModeId(2)]);
        let freqs: Vec<_> = (&l).into_iter().map(|p| p.frequency_mhz).collect();
        assert_eq!(freqs, vec![200.0, 600.0, 800.0]);
    }
}
