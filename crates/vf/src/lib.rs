//! Voltage/frequency physics for dynamic voltage scaling (DVS).
//!
//! This crate implements the circuit-level relationships that the rest of the
//! reproduction builds on:
//!
//! * the **alpha-power law** relating supply voltage to achievable clock
//!   frequency, `f = k (v - vt)^a / v` (Sakurai–Newton), used by the paper
//!   with `a = 1.5` and `vt = 0.45 V`;
//! * **operating points** — paired `(V, f)` settings — and **ladders** of
//!   discrete settings such as the XScale-like 3-level ladder
//!   (200 MHz @ 0.7 V, 600 MHz @ 1.3 V, 800 MHz @ 1.65 V) and interpolated
//!   7- and 13-level ladders;
//! * the **regulator transition-cost model** (Burd–Brodersen) giving the
//!   energy and time cost of switching between two operating points:
//!   `SE = (1 - u) · c · |v_i² - v_j²|` and `ST = (2c / IMAX) · |v_i - v_j|`.
//!
//! All quantities use SI-derived units that keep the numbers in a pleasant
//! range for the paper's scale: **volts**, **megahertz**, **microseconds**
//! and **microjoules**.
//!
//! # Example
//!
//! ```
//! use dvs_vf::{AlphaPower, VoltageLadder, TransitionModel};
//!
//! let law = AlphaPower::paper();
//! let ladder = VoltageLadder::xscale3(&law);
//! assert_eq!(ladder.len(), 3);
//! assert!((ladder.fastest().frequency_mhz - 800.0).abs() < 1e-9);
//!
//! // Paper's "typical" regulator: c = 10 µF gives a 12 µs / 1.2 µJ cost for
//! // a 1.3 V -> 0.7 V transition.
//! let tm = TransitionModel::with_capacitance_uf(10.0);
//! let st = tm.time_us(1.3, 0.7);
//! let se = tm.energy_uj(1.3, 0.7);
//! assert!((st - 12.0).abs() < 1e-9);
//! assert!((se - 1.2).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alpha_power;
mod error;
mod ladder;
mod point;
mod transition;

pub use alpha_power::AlphaPower;
pub use error::VfError;
pub use ladder::{LadderSpec, VoltageLadder};
pub use point::{ModeId, OperatingPoint};
pub use transition::TransitionModel;
