use std::fmt;

/// Index of a DVS mode within a [`crate::VoltageLadder`].
///
/// Mode 0 is always the *slowest* (lowest-voltage) setting; higher indices
/// are strictly faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModeId(pub usize);

impl ModeId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One `(V, f)` pair the processor can be set to.
///
/// Energy bookkeeping across this reproduction uses the standard CMOS
/// dynamic-energy scaling: the energy of one clock cycle of activity is
/// proportional to `V²`, and power to `V²·f`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Clock frequency in MHz. (1 MHz == 1 cycle/µs, so cycle counts divided
    /// by this frequency give microseconds directly.)
    pub frequency_mhz: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    #[must_use]
    pub fn new(voltage: f64, frequency_mhz: f64) -> Self {
        OperatingPoint {
            voltage,
            frequency_mhz,
        }
    }

    /// Clock period in microseconds.
    #[must_use]
    pub fn period_us(&self) -> f64 {
        1.0 / self.frequency_mhz
    }

    /// The `V²` factor by which per-cycle switching energy scales at this
    /// point, relative to a 1 V reference.
    #[must_use]
    pub fn energy_scale(&self) -> f64 {
        self.voltage * self.voltage
    }

    /// Time in microseconds to execute `cycles` clock cycles at this point.
    #[must_use]
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / self.frequency_mhz
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz @ {:.2} V", self.frequency_mhz, self.voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_and_cycle_conversion() {
        let p = OperatingPoint::new(1.3, 600.0);
        assert!((p.period_us() - 1.0 / 600.0).abs() < 1e-15);
        // 600 cycles at 600 MHz take exactly 1 µs.
        assert!((p.cycles_to_us(600.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_scale_is_v_squared() {
        let p = OperatingPoint::new(1.65, 800.0);
        assert!((p.energy_scale() - 1.65 * 1.65).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let p = OperatingPoint::new(0.7, 200.0);
        assert_eq!(p.to_string(), "200 MHz @ 0.70 V");
        assert_eq!(ModeId(2).to_string(), "m2");
    }

    #[test]
    fn mode_ids_order() {
        assert!(ModeId(0) < ModeId(1));
        assert_eq!(ModeId(3).index(), 3);
    }
}
