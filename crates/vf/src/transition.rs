use crate::{ModeId, VfError, VoltageLadder};

/// The Burd–Brodersen voltage-regulator transition-cost model used by the
/// paper (its equations are taken from ISLPED'00):
///
/// ```text
/// SE(vi, vj) = (1 - u) · c · |vi² - vj²|      (energy cost)
/// ST(vi, vj) = (2c / IMAX) · |vi - vj|        (time cost)
/// ```
///
/// where `c` is the regulator capacitance, `u` its energy efficiency and
/// `IMAX` its maximum supply current.
///
/// Units: capacitance in **µF**, current in **A**, voltages in **V**;
/// energies come out in **µJ** and times in **µs**. With the paper's default
/// `u = 0.9` and `IMAX = 1 A`, a 10 µF regulator charges 12 µs and 1.2 µJ
/// for a 1.3 V ↔ 0.7 V transition, matching the paper's quoted typical cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionModel {
    /// Regulator capacitance in µF.
    pub capacitance_uf: f64,
    /// Regulator energy efficiency `u` in [0, 1).
    pub efficiency: f64,
    /// Maximum regulator current in amperes.
    pub i_max_a: f64,
}

impl TransitionModel {
    /// Default regulator parameters (`u = 0.9`, `IMAX = 1 A`) with the given
    /// capacitance. These defaults reproduce the paper's typical 12 µs /
    /// 1.2 µJ cost at `c = 10 µF`.
    #[must_use]
    pub fn with_capacitance_uf(capacitance_uf: f64) -> Self {
        TransitionModel {
            capacitance_uf,
            efficiency: 0.9,
            i_max_a: 1.0,
        }
    }

    /// Fully parameterized constructor.
    ///
    /// # Errors
    ///
    /// [`VfError::InvalidParameter`] for non-positive capacitance or current,
    /// or efficiency outside `[0, 1)`.
    pub fn new(capacitance_uf: f64, efficiency: f64, i_max_a: f64) -> Result<Self, VfError> {
        if capacitance_uf <= 0.0 || capacitance_uf.is_nan() {
            return Err(VfError::InvalidParameter {
                name: "capacitance_uf",
                value: capacitance_uf,
            });
        }
        if !(0.0..1.0).contains(&efficiency) {
            return Err(VfError::InvalidParameter {
                name: "efficiency",
                value: efficiency,
            });
        }
        if i_max_a <= 0.0 || i_max_a.is_nan() {
            return Err(VfError::InvalidParameter {
                name: "i_max_a",
                value: i_max_a,
            });
        }
        Ok(TransitionModel {
            capacitance_uf,
            efficiency,
            i_max_a,
        })
    }

    /// A zero-cost model (the limit `c -> 0`), useful for the
    /// Saputra-et-al.-style baseline that ignores transition costs.
    #[must_use]
    pub fn free() -> Self {
        TransitionModel {
            capacitance_uf: 0.0,
            efficiency: 0.9,
            i_max_a: 1.0,
        }
    }

    /// Energy cost `SE` in µJ of switching between supplies `v1` and `v2`
    /// (volts). Zero when `v1 == v2`.
    #[must_use]
    pub fn energy_uj(&self, v1: f64, v2: f64) -> f64 {
        (1.0 - self.efficiency) * self.capacitance_uf * (v1 * v1 - v2 * v2).abs()
    }

    /// Time cost `ST` in µs of switching between supplies `v1` and `v2`
    /// (volts). Zero when `v1 == v2`.
    #[must_use]
    pub fn time_us(&self, v1: f64, v2: f64) -> f64 {
        2.0 * self.capacitance_uf / self.i_max_a * (v1 - v2).abs()
    }

    /// Energy cost between two ladder modes.
    #[must_use]
    pub fn mode_energy_uj(&self, ladder: &VoltageLadder, a: ModeId, b: ModeId) -> f64 {
        self.energy_uj(ladder.point(a).voltage, ladder.point(b).voltage)
    }

    /// Time cost between two ladder modes.
    #[must_use]
    pub fn mode_time_us(&self, ladder: &VoltageLadder, a: ModeId, b: ModeId) -> f64 {
        self.time_us(ladder.point(a).voltage, ladder.point(b).voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlphaPower;

    #[test]
    fn paper_typical_cost_at_10uf() {
        let tm = TransitionModel::with_capacitance_uf(10.0);
        assert!((tm.time_us(1.3, 0.7) - 12.0).abs() < 1e-12);
        assert!((tm.energy_uj(1.3, 0.7) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn costs_are_symmetric_and_zero_on_diagonal() {
        let tm = TransitionModel::with_capacitance_uf(10.0);
        for &(a, b) in &[(0.7, 1.3), (1.3, 1.65), (0.7, 1.65)] {
            assert_eq!(tm.energy_uj(a, b), tm.energy_uj(b, a));
            assert_eq!(tm.time_us(a, b), tm.time_us(b, a));
        }
        assert_eq!(tm.energy_uj(1.3, 1.3), 0.0);
        assert_eq!(tm.time_us(1.3, 1.3), 0.0);
    }

    #[test]
    fn costs_scale_linearly_with_capacitance() {
        let tm1 = TransitionModel::with_capacitance_uf(1.0);
        let tm100 = TransitionModel::with_capacitance_uf(100.0);
        assert!((tm100.energy_uj(0.7, 1.65) / tm1.energy_uj(0.7, 1.65) - 100.0).abs() < 1e-9);
        assert!((tm100.time_us(0.7, 1.65) / tm1.time_us(0.7, 1.65) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn free_model_costs_nothing() {
        let tm = TransitionModel::free();
        assert_eq!(tm.energy_uj(0.7, 1.65), 0.0);
        assert_eq!(tm.time_us(0.7, 1.65), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(TransitionModel::new(-1.0, 0.9, 1.0).is_err());
        assert!(TransitionModel::new(10.0, 1.0, 1.0).is_err());
        assert!(TransitionModel::new(10.0, -0.1, 1.0).is_err());
        assert!(TransitionModel::new(10.0, 0.9, 0.0).is_err());
        assert!(TransitionModel::new(10.0, 0.9, 1.0).is_ok());
    }

    #[test]
    fn mode_costs_match_voltage_costs() {
        let law = AlphaPower::paper();
        let ladder = VoltageLadder::xscale3(&law);
        let tm = TransitionModel::with_capacitance_uf(10.0);
        let e = tm.mode_energy_uj(&ladder, ModeId(0), ModeId(2));
        assert!((e - tm.energy_uj(0.7, 1.65)).abs() < 1e-12);
        let t = tm.mode_time_us(&ladder, ModeId(1), ModeId(2));
        assert!((t - tm.time_us(1.3, 1.65)).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_holds_for_time() {
        // ST is a metric on voltages (scaled absolute value), so hopping
        // through an intermediate level never beats a direct switch.
        let tm = TransitionModel::with_capacitance_uf(10.0);
        let direct = tm.time_us(0.7, 1.65);
        let hop = tm.time_us(0.7, 1.3) + tm.time_us(1.3, 1.65);
        assert!(direct <= hop + 1e-12);
    }
}
