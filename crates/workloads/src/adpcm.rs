//! Synthetic `adpcm/encode`: IMA ADPCM speech encoder.
//!
//! The real encoder walks 16-bit PCM samples once, keeping a tiny predictor
//! state (step index + predicted value) and emitting 4-bit codes. Its
//! profile is the most compute-bound of the suite: a short dependent
//! integer chain per sample, a step-adjustment branch, and almost no cache
//! misses beyond streaming cold misses (Table 7: `tinvariant` is ~3% of the
//! runtime).

use crate::{InputSpec, Lcg};
use dvs_ir::{Cfg, CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{Trace, TraceBuilder};

const PCM_BASE: u64 = 0x0100_0000;
const OUT_BASE: u64 = 0x0200_0000;
const STEP_TABLE: u64 = 0x0300_0000; // 89-entry step table, cache-resident

/// Blocks: entry → head → (step_up | step_down) → emit → head | exit.
pub(crate) fn build_cfg() -> Cfg {
    let mut b = CfgBuilder::new("adpcm/encode");
    let entry = b.block("entry");
    let head = b.block("head");
    let step_up = b.block("step_up");
    let step_down = b.block("step_down");
    let emit = b.block("emit");
    let exit = b.block("exit");

    // entry: predictor init.
    b.push_all(
        entry,
        (0..4).map(|i| Inst::alu(Opcode::IntAlu, Reg(1 + i), &[Reg(0)])),
    );

    // head: load sample, compute delta against prediction (dependent chain),
    // index the step table, branch on sign.
    b.push(head, Inst::load(Reg(10), Reg(2), MemWidth::B2)); // sample
    b.push(head, Inst::alu(Opcode::IntAlu, Reg(11), &[Reg(10), Reg(3)])); // delta
    b.push(head, Inst::alu(Opcode::IntAlu, Reg(12), &[Reg(11)])); // abs
    b.push(head, Inst::load(Reg(13), Reg(4), MemWidth::B4)); // step table
    b.push(
        head,
        Inst::alu(Opcode::IntAlu, Reg(14), &[Reg(12), Reg(13)]),
    ); // quantize 1
    b.push(
        head,
        Inst::alu(Opcode::IntAlu, Reg(15), &[Reg(14), Reg(13)]),
    ); // quantize 2
    b.push(head, Inst::alu(Opcode::IntAlu, Reg(16), &[Reg(15)])); // code
    b.push(head, Inst::branch(Reg(11)));

    // step_up / step_down: adjust step index and clamp.
    for (blk, n) in [(step_up, 4), (step_down, 3)] {
        b.push_all(
            blk,
            (0..n).map(|i| Inst::alu(Opcode::IntAlu, Reg(20 + i), &[Reg(16), Reg(13)])),
        );
    }

    // emit: reconstruct prediction (dependent), pack & store nibble, loop.
    b.push(emit, Inst::alu(Opcode::IntAlu, Reg(3), &[Reg(3), Reg(20)])); // new prediction
    b.push(emit, Inst::alu(Opcode::IntAlu, Reg(24), &[Reg(3)])); // clamp lo
    b.push(emit, Inst::alu(Opcode::IntAlu, Reg(25), &[Reg(24)])); // clamp hi
    b.push(
        emit,
        Inst::alu(Opcode::IntAlu, Reg(26), &[Reg(16), Reg(25)]),
    ); // pack
    b.push(emit, Inst::store(Reg(26), Reg(5), MemWidth::B1));
    b.push(emit, Inst::branch(Reg(26)));

    b.edge(entry, head);
    b.edge(head, step_up);
    b.edge(head, step_down);
    b.edge(step_up, emit);
    b.edge(step_down, emit);
    b.edge(emit, head);
    b.edge(emit, exit);
    b.finish(entry, exit).expect("adpcm CFG is well-formed")
}

pub(crate) fn trace(cfg: &Cfg, input: &InputSpec) -> Trace {
    let entry = cfg.entry();
    let head = cfg.block_by_label("head").expect("adpcm cfg");
    let step_up = cfg.block_by_label("step_up").expect("adpcm cfg");
    let step_down = cfg.block_by_label("step_down").expect("adpcm cfg");
    let emit = cfg.block_by_label("emit").expect("adpcm cfg");
    let exit = cfg.exit();

    let mut rng = Lcg::new(input.seed);
    let mut tb = TraceBuilder::new(cfg);
    tb.step(entry, vec![]);
    let mut step_index: u64 = 40;
    for i in 0..input.iterations as u64 {
        let sample_addr = PCM_BASE + i * 2;
        let table_addr = STEP_TABLE + (step_index % 89) * 4;
        tb.step(head, vec![sample_addr, table_addr]);
        // Speech-like behaviour: runs of rising/falling samples; complexity
        // raises the switching rate.
        let up = rng.chance(0.35 + 0.3 * input.complexity);
        if up {
            step_index = (step_index + 2).min(88);
            tb.step(step_up, vec![]);
        } else {
            step_index = step_index.saturating_sub(1);
            tb.step(step_down, vec![]);
        }
        tb.step(emit, vec![OUT_BASE + i / 2]);
    }
    tb.step(exit, vec![]);
    tb.finish().expect("adpcm trace is a valid walk")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use dvs_sim::Machine;
    use dvs_vf::OperatingPoint;

    #[test]
    fn cfg_shape() {
        let cfg = build_cfg();
        assert_eq!(cfg.num_blocks(), 6);
        assert_eq!(cfg.num_edges(), 7);
    }

    #[test]
    fn trace_visits_both_step_directions() {
        let cfg = build_cfg();
        let t = trace(&cfg, &Benchmark::AdpcmEncode.default_input());
        let up = cfg.block_by_label("step_up").unwrap();
        let down = cfg.block_by_label("step_down").unwrap();
        let walk = t.walk();
        assert!(walk.contains(&up));
        assert!(walk.contains(&down));
    }

    #[test]
    fn is_compute_bound() {
        let cfg = build_cfg();
        let mut input = Benchmark::AdpcmEncode.default_input();
        input.iterations = 4000; // keep the test quick
        let t = trace(&cfg, &input);
        let run = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        // Memory stalls must be a small fraction of the run.
        let stall_frac = run.stall_cycles / run.total_cycles;
        assert!(stall_frac < 0.25, "adpcm stall fraction {stall_frac}");
        assert!(
            run.l1d.miss_rate() < 0.15,
            "miss rate {}",
            run.l1d.miss_rate()
        );
    }
}
