//! Synthetic `epic`: the EPIC wavelet image compressor.
//!
//! EPIC runs separable FIR filter pyramids over a full image. The row pass
//! streams with good locality; the column pass walks with a stride of a
//! whole row, defeating the L1 and (for large images) hitting main memory
//! hard. It is the most memory-dominated benchmark in Table 7 (the largest
//! `tinvariant` of the set relative to runtime).

use crate::{InputSpec, Lcg};
use dvs_ir::{Cfg, CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{Trace, TraceBuilder};

const IMG_BASE: u64 = 0x0100_0000;
const OUT_BASE: u64 = 0x0800_0000;
/// Pixels per row (4-byte floats). 480 columns gives a 1920-byte row
/// stride — deliberately *not* a power of two, so column walks spread over
/// cache sets the way real (non-pathological) image dimensions do.
const COLS: u64 = 480;
const ROW_BYTES: u64 = COLS * 4;

/// Blocks: entry → rowpass (looped) → colhead → colpass (looped) →
/// quant (looped) → huffman (looped) → exit, with the pyramid looping
/// back to rowpass.
pub(crate) fn build_cfg() -> Cfg {
    let mut b = CfgBuilder::new("epic");
    let entry = b.block("entry");
    let rowpass = b.block("rowpass");
    let colhead = b.block("colhead");
    let colpass = b.block("colpass");
    let quant = b.block("quant");
    let huffman = b.block("huffman");
    let exit = b.block("exit");

    b.push_all(
        entry,
        (0..3).map(|i| Inst::alu(Opcode::IntAlu, Reg(1 + i), &[Reg(0)])),
    );

    // rowpass: 5-tap horizontal filter over 4 pixels (2 loads covering the
    // tap window, 5 multiplies + 4 adds, address arithmetic, 1 store).
    b.push(rowpass, Inst::load(Reg(10), Reg(2), MemWidth::B4));
    b.push(rowpass, Inst::load(Reg(11), Reg(2), MemWidth::B4));
    for i in 0..5 {
        b.push(
            rowpass,
            Inst::alu(Opcode::FpMul, Reg(12 + i), &[Reg(10 + i % 2)]),
        );
    }
    b.push(
        rowpass,
        Inst::alu(Opcode::FpAdd, Reg(20), &[Reg(12), Reg(13)]),
    );
    b.push(
        rowpass,
        Inst::alu(Opcode::FpAdd, Reg(21), &[Reg(14), Reg(15)]),
    );
    b.push(
        rowpass,
        Inst::alu(Opcode::FpAdd, Reg(22), &[Reg(20), Reg(21)]),
    );
    b.push(
        rowpass,
        Inst::alu(Opcode::FpAdd, Reg(23), &[Reg(22), Reg(16)]),
    );
    b.push(rowpass, Inst::alu(Opcode::IntAlu, Reg(24), &[Reg(2)]));
    b.push(rowpass, Inst::store(Reg(23), Reg(3), MemWidth::B4));
    b.push(rowpass, Inst::branch(Reg(23)));

    // colhead: set up the vertical pass.
    b.push(colhead, Inst::alu(Opcode::IntAlu, Reg(16), &[Reg(15)]));

    // colpass: vertical filter step — strided loads a full row apart,
    // same tap arithmetic as the row pass.
    b.push(colpass, Inst::load(Reg(30), Reg(4), MemWidth::B4));
    b.push(colpass, Inst::load(Reg(31), Reg(4), MemWidth::B4));
    for i in 0..4 {
        b.push(
            colpass,
            Inst::alu(Opcode::FpMul, Reg(32 + i), &[Reg(30 + i % 2)]),
        );
    }
    b.push(
        colpass,
        Inst::alu(Opcode::FpAdd, Reg(36), &[Reg(32), Reg(33)]),
    );
    b.push(
        colpass,
        Inst::alu(Opcode::FpAdd, Reg(37), &[Reg(34), Reg(35)]),
    );
    b.push(
        colpass,
        Inst::alu(Opcode::FpAdd, Reg(38), &[Reg(36), Reg(37)]),
    );
    b.push(colpass, Inst::store(Reg(38), Reg(5), MemWidth::B4));
    b.push(colpass, Inst::branch(Reg(38)));

    // quant: binary quantizer over coefficients (integer).
    b.push(quant, Inst::load(Reg(21), Reg(6), MemWidth::B4));
    b.push(quant, Inst::alu(Opcode::IntAlu, Reg(22), &[Reg(21)]));
    b.push(quant, Inst::alu(Opcode::IntAlu, Reg(23), &[Reg(22)]));
    b.push(quant, Inst::store(Reg(23), Reg(7), MemWidth::B2));
    b.push(quant, Inst::branch(Reg(23)));

    // huffman: run-length/entropy coding of the quantized coefficients —
    // branchy, bit-serial integer work over resident buffers.
    b.push(huffman, Inst::load(Reg(40), Reg(8), MemWidth::B2));
    b.push(
        huffman,
        Inst::alu(Opcode::IntAlu, Reg(41), &[Reg(40), Reg(41)]),
    );
    b.push(huffman, Inst::alu(Opcode::IntAlu, Reg(42), &[Reg(41)]));
    b.push(huffman, Inst::store(Reg(42), Reg(9), MemWidth::B1));
    b.push(huffman, Inst::branch(Reg(42)));

    b.edge(entry, rowpass);
    b.edge(rowpass, rowpass);
    b.edge(rowpass, colhead);
    b.edge(colhead, colpass);
    b.edge(colpass, colpass);
    b.edge(colpass, quant);
    b.edge(quant, quant);
    b.edge(quant, huffman);
    b.edge(huffman, huffman);
    b.edge(huffman, rowpass); // next pyramid level
    b.edge(huffman, exit);
    b.finish(entry, exit).expect("epic CFG is well-formed")
}

pub(crate) fn trace(cfg: &Cfg, input: &InputSpec) -> Trace {
    let blk = |l: &str| cfg.block_by_label(l).expect("epic cfg");
    let (entry, rowpass, colhead, colpass, quant, huffman, exit) = (
        cfg.entry(),
        blk("rowpass"),
        blk("colhead"),
        blk("colpass"),
        blk("quant"),
        blk("huffman"),
        cfg.exit(),
    );
    let mut rng = Lcg::new(input.seed);
    let mut tb = TraceBuilder::new(cfg);
    tb.step(entry, vec![]);
    let rows = input.iterations as u64;
    // Two pyramid levels: full resolution, then half.
    for level in 0..2u64 {
        let lrows = rows >> level;
        let lcols = COLS >> level;
        // Row pass: low-pass, high-pass and detail filters walk the same
        // rows (the second and third passes hit warm lines — the real code
        // applies separable filters repeatedly over one pyramid level).
        for _filter in 0..3 {
            for r in 0..lrows {
                for c in (0..lcols).step_by(2) {
                    let p = IMG_BASE + r * ROW_BYTES + c * 4;
                    tb.step(rowpass, vec![p, p + 8, OUT_BASE + r * ROW_BYTES + c * 4]);
                }
            }
        }
        tb.step(colhead, vec![]);
        // Column pass: strided walks a full row apart, tiled by cache line
        // (real implementations tile exactly to avoid pathological misses):
        // within an 8-column tile the row lines are loaded once and reused.
        for _filter in 0..2 {
            for c_tile in (0..lcols).step_by(8) {
                for r in (0..lrows).step_by(2) {
                    for c in (c_tile..(c_tile + 8).min(lcols)).step_by(4) {
                        let p = OUT_BASE + r * ROW_BYTES + c * 4;
                        tb.step(
                            colpass,
                            vec![p, p + ROW_BYTES, IMG_BASE + r * ROW_BYTES + c * 4],
                        );
                    }
                }
            }
        }
        // Quantize: sequential walk with data-dependent (but cheap) codes.
        for r in (0..lrows).step_by(2) {
            let n = lcols / 8;
            for c in 0..n {
                let p = IMG_BASE + r * ROW_BYTES + c * 32;
                let _ = rng.below(4);
                tb.step(quant, vec![p, OUT_BASE + 0x40_0000 + r * 256 + c * 2]);
            }
        }
        // Entropy-code the (warm) quantized plane: one step per symbol run.
        let symbols = (lrows * lcols) / 48 + rng.below(64);
        for k in 0..symbols {
            let src = OUT_BASE + 0x40_0000 + (k * 2) % 0x8000;
            let dst = OUT_BASE + 0x60_0000 + k % 0x4000;
            tb.step(huffman, vec![src, dst]);
        }
    }
    tb.step(exit, vec![]);
    tb.finish().expect("epic trace is a valid walk")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use dvs_sim::Machine;
    use dvs_vf::OperatingPoint;

    #[test]
    fn cfg_shape() {
        let cfg = build_cfg();
        assert_eq!(cfg.num_blocks(), 7);
        assert_eq!(cfg.num_edges(), 11);
    }

    #[test]
    fn is_memory_heavy() {
        let cfg = build_cfg();
        let mut input = Benchmark::Epic.default_input();
        input.iterations = 64;
        let t = trace(&cfg, &input);
        let run = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        assert!(run.dram_accesses > 500, "dram = {}", run.dram_accesses);
        // A visible invariant-memory component.
        assert!(
            run.stall_cycles + run.overlap_cycles > 0.02 * run.total_cycles,
            "memory time invisible"
        );
    }

    #[test]
    fn column_pass_misses_more_than_row_pass() {
        // Sanity on the locality story: strided vertical traffic should
        // produce the bulk of the misses. Compare L1D miss rate of a
        // trace with rows only vs the full pyramid.
        let cfg = build_cfg();
        let mut input = Benchmark::Epic.default_input();
        input.iterations = 48;
        let t = trace(&cfg, &input);
        let run = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        assert!(
            run.l1d.miss_rate() > 0.05,
            "miss rate {}",
            run.l1d.miss_rate()
        );
    }
}
