//! Synthetic `ghostscript`: PostScript page rasterization.
//!
//! A small, branchy workload: per scanline band, the renderer walks the
//! display list making path/clip decisions (hard-to-predict branches) and
//! fills spans with streaming stores into the framebuffer. It is the
//! shortest-running benchmark in the suite (Table 4: 2 ms at 200 MHz) and
//! produces the smallest MILP instances (Table 3: 357 µJ total energy).

use crate::{InputSpec, Lcg};
use dvs_ir::{Cfg, CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{Trace, TraceBuilder};

const DISPLAY_LIST: u64 = 0x0100_0000;
const FRAMEBUF: u64 = 0x0A00_0000;
const ROW_BYTES: u64 = 2048;

/// Blocks: entry → band_head → elem (looped) → (clip | fill) → span
/// (looped from fill) → elem_next → (band_head | exit).
pub(crate) fn build_cfg() -> Cfg {
    let mut b = CfgBuilder::new("ghostscript");
    let entry = b.block("entry");
    let band_head = b.block("band_head");
    let elem = b.block("elem");
    let clip = b.block("clip");
    let fill = b.block("fill");
    let span = b.block("span");
    let elem_next = b.block("elem_next");
    let exit = b.block("exit");

    b.push_all(
        entry,
        (0..3).map(|i| Inst::alu(Opcode::IntAlu, Reg(1 + i), &[Reg(0)])),
    );

    // band_head: band setup.
    b.push(band_head, Inst::alu(Opcode::IntAlu, Reg(10), &[Reg(1)]));
    b.push(band_head, Inst::alu(Opcode::IntAlu, Reg(11), &[Reg(10)]));

    // elem: fetch a display-list element, branch on kind.
    b.push(elem, Inst::load(Reg(12), Reg(2), MemWidth::B8));
    b.push(elem, Inst::alu(Opcode::IntAlu, Reg(13), &[Reg(12)]));
    b.push(elem, Inst::alu(Opcode::IntAlu, Reg(14), &[Reg(13)]));
    b.push(elem, Inst::branch(Reg(14)));

    // clip: clipping arithmetic, no output.
    b.push(clip, Inst::alu(Opcode::IntAlu, Reg(15), &[Reg(14)]));
    b.push(clip, Inst::alu(Opcode::IntMul, Reg(16), &[Reg(15)]));
    b.push(clip, Inst::alu(Opcode::IntAlu, Reg(17), &[Reg(16)]));

    // fill: span setup (edge intersection divide).
    b.push(
        fill,
        Inst::alu(Opcode::IntDiv, Reg(18), &[Reg(14), Reg(11)]),
    );
    b.push(fill, Inst::alu(Opcode::IntAlu, Reg(19), &[Reg(18)]));

    // span: write 8 framebuffer bytes per step.
    b.push(span, Inst::store(Reg(19), Reg(3), MemWidth::B8));
    b.push(span, Inst::alu(Opcode::IntAlu, Reg(20), &[Reg(20)]));
    b.push(span, Inst::branch(Reg(20)));

    // elem_next: advance the display list cursor.
    b.push(elem_next, Inst::alu(Opcode::IntAlu, Reg(21), &[Reg(20)]));
    b.push(elem_next, Inst::branch(Reg(21)));

    b.edge(entry, band_head);
    b.edge(band_head, elem);
    b.edge(elem, clip);
    b.edge(elem, fill);
    b.edge(clip, elem_next);
    b.edge(fill, span);
    b.edge(span, span);
    b.edge(span, elem_next);
    b.edge(elem_next, elem);
    b.edge(elem_next, band_head);
    b.edge(elem_next, exit);
    b.finish(entry, exit)
        .expect("ghostscript CFG is well-formed")
}

pub(crate) fn trace(cfg: &Cfg, input: &InputSpec) -> Trace {
    let blk = |l: &str| cfg.block_by_label(l).expect("gs cfg");
    let (entry, band_head, elem, clip, fill, span, elem_next, exit) = (
        cfg.entry(),
        blk("band_head"),
        blk("elem"),
        blk("clip"),
        blk("fill"),
        blk("span"),
        blk("elem_next"),
        cfg.exit(),
    );
    let mut rng = Lcg::new(input.seed);
    let mut tb = TraceBuilder::new(cfg);
    tb.step(entry, vec![]);
    let mut dl = DISPLAY_LIST;
    for band in 0..input.iterations as u64 {
        tb.step(band_head, vec![]);
        let elems = 10 + rng.below(8);
        for e in 0..elems {
            tb.step(elem, vec![dl]);
            dl += 8;
            // Path decision is data-dependent and hard to predict.
            if rng.chance(0.4 + 0.2 * input.complexity) {
                tb.step(clip, vec![]);
            } else {
                tb.step(fill, vec![]);
                let spans = 8 + rng.below(16);
                for s in 0..spans {
                    // Spans within an element overwrite a narrow window, so
                    // most stores hit lines already resident.
                    let addr = FRAMEBUF + band * ROW_BYTES + (e * 32 + s * 8) % 256;
                    tb.step(span, vec![addr]);
                }
            }
            tb.step(elem_next, vec![]);
        }
    }
    tb.step(exit, vec![]);
    tb.finish().expect("ghostscript trace is a valid walk")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use dvs_sim::Machine;
    use dvs_vf::OperatingPoint;

    #[test]
    fn cfg_shape() {
        let cfg = build_cfg();
        assert_eq!(cfg.num_blocks(), 8);
        assert_eq!(cfg.num_edges(), 11);
    }

    #[test]
    fn is_the_smallest_benchmark() {
        let gs_cfg = build_cfg();
        let gs = trace(&gs_cfg, &Benchmark::Ghostscript.default_input());
        let mpeg_b = Benchmark::MpegDecode;
        let mpeg_cfg = mpeg_b.build_cfg();
        let mpeg = mpeg_b.trace(&mpeg_cfg, &mpeg_b.default_input());
        assert!(
            gs.dynamic_inst_count(&gs_cfg) < mpeg.dynamic_inst_count(&mpeg_cfg) / 2,
            "ghostscript should be much smaller than mpeg"
        );
    }

    #[test]
    fn branches_are_hard_to_predict() {
        let cfg = build_cfg();
        let t = trace(&cfg, &Benchmark::Ghostscript.default_input());
        let run = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        assert!(run.mispredicts > 50, "mispredicts = {}", run.mispredicts);
    }
}
