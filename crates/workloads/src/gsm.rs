//! Synthetic `gsm/encode`: GSM 06.10 full-rate speech encoder.
//!
//! The encoder processes 160-sample frames: short-term LPC analysis
//! (autocorrelation — integer multiply-accumulate loops), long-term
//! prediction (a lag search over a small history buffer), and RPE grid
//! selection. Everything lives in small, reused buffers, so the profile is
//! integer-multiply-heavy with high cache-hit memory traffic and almost no
//! invariant memory time (Table 7: `tinvariant` = 389 µs of a 334 ms run —
//! ~0.1%).

use crate::{InputSpec, Lcg};
use dvs_ir::{Cfg, CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{Trace, TraceBuilder};

const PCM_BASE: u64 = 0x0100_0000;
const HIST_BASE: u64 = 0x0400_0000; // LTP history, ~1 KB, cache-resident
const WINDOW_BASE: u64 = 0x0480_0000; // frame window copy, cache-resident
const COEF_BASE: u64 = 0x0500_0000;

/// Blocks: entry → frame_head → autocorr* → lpc → stfilter* → ltp_head →
/// ltp_step* → rpe → quantize → (frame_head | exit).
pub(crate) fn build_cfg() -> Cfg {
    let mut b = CfgBuilder::new("gsm/encode");
    let entry = b.block("entry");
    let frame_head = b.block("frame_head");
    let autocorr = b.block("autocorr");
    let lpc = b.block("lpc");
    let stfilter = b.block("stfilter");
    let ltp_head = b.block("ltp_head");
    let ltp_step = b.block("ltp_step");
    let rpe = b.block("rpe");
    let quantize = b.block("quantize");
    let exit = b.block("exit");

    b.push_all(
        entry,
        (0..4).map(|i| Inst::alu(Opcode::IntAlu, Reg(1 + i), &[Reg(0)])),
    );

    // frame_head: load a chunk of samples, pre-emphasis filter (dependent).
    for _ in 0..4 {
        b.push(frame_head, Inst::load(Reg(10), Reg(2), MemWidth::B2));
        b.push(
            frame_head,
            Inst::alu(Opcode::IntAlu, Reg(11), &[Reg(10), Reg(11)]),
        );
    }
    b.push(frame_head, Inst::alu(Opcode::IntAlu, Reg(12), &[Reg(11)]));

    // autocorr: multiply-accumulate over the window (looped dynamically).
    b.push(autocorr, Inst::load(Reg(13), Reg(3), MemWidth::B2));
    b.push(autocorr, Inst::load(Reg(14), Reg(3), MemWidth::B2));
    b.push(
        autocorr,
        Inst::alu(Opcode::IntMul, Reg(15), &[Reg(13), Reg(14)]),
    );
    b.push(
        autocorr,
        Inst::alu(Opcode::IntAlu, Reg(16), &[Reg(16), Reg(15)]),
    );
    b.push(autocorr, Inst::branch(Reg(16)));

    // lpc: reflection coefficients — division-heavy Schur recursion.
    b.push(lpc, Inst::alu(Opcode::IntDiv, Reg(17), &[Reg(16), Reg(12)]));
    b.push(lpc, Inst::alu(Opcode::IntMul, Reg(18), &[Reg(17), Reg(17)]));
    b.push(lpc, Inst::alu(Opcode::IntAlu, Reg(19), &[Reg(18)]));
    b.push(lpc, Inst::store(Reg(19), Reg(4), MemWidth::B2));

    // stfilter: short-term analysis filtering through the lattice
    // (per-sample multiply-accumulate against the reflection coefficients).
    b.push(stfilter, Inst::load(Reg(30), Reg(7), MemWidth::B2));
    b.push(
        stfilter,
        Inst::alu(Opcode::IntMul, Reg(31), &[Reg(30), Reg(19)]),
    );
    b.push(
        stfilter,
        Inst::alu(Opcode::IntAlu, Reg(32), &[Reg(31), Reg(32)]),
    );
    b.push(stfilter, Inst::store(Reg(32), Reg(7), MemWidth::B2));
    b.push(stfilter, Inst::branch(Reg(32)));

    // ltp_head: start the lag search.
    b.push(ltp_head, Inst::alu(Opcode::IntAlu, Reg(20), &[Reg(19)]));
    b.push(ltp_head, Inst::branch(Reg(20)));

    // ltp_step: one lag candidate — cross-correlation against history.
    b.push(ltp_step, Inst::load(Reg(21), Reg(5), MemWidth::B2));
    b.push(ltp_step, Inst::load(Reg(22), Reg(5), MemWidth::B2));
    b.push(
        ltp_step,
        Inst::alu(Opcode::IntMul, Reg(23), &[Reg(21), Reg(22)]),
    );
    b.push(
        ltp_step,
        Inst::alu(Opcode::IntAlu, Reg(24), &[Reg(24), Reg(23)]),
    );
    b.push(
        ltp_step,
        Inst::alu(Opcode::IntAlu, Reg(25), &[Reg(24), Reg(20)]),
    );
    b.push(ltp_step, Inst::branch(Reg(25)));

    // rpe: grid decimation + coding, store the subframe.
    for i in 0..3 {
        b.push(
            rpe,
            Inst::alu(Opcode::IntMul, Reg(26 + i), &[Reg(25), Reg(19)]),
        );
        b.push(rpe, Inst::alu(Opcode::IntAlu, Reg(29), &[Reg(26 + i)]));
    }
    b.push(rpe, Inst::store(Reg(29), Reg(6), MemWidth::B2));

    // quantize: APCM gain quantization + frame packing.
    b.push(
        quantize,
        Inst::alu(Opcode::IntDiv, Reg(33), &[Reg(29), Reg(12)]),
    );
    b.push(quantize, Inst::alu(Opcode::IntAlu, Reg(34), &[Reg(33)]));
    b.push(quantize, Inst::store(Reg(34), Reg(6), MemWidth::B2));
    b.push(quantize, Inst::branch(Reg(34)));

    b.edge(entry, frame_head);
    b.edge(frame_head, autocorr);
    b.edge(autocorr, autocorr);
    b.edge(autocorr, lpc);
    b.edge(lpc, stfilter);
    b.edge(stfilter, stfilter);
    b.edge(stfilter, ltp_head);
    b.edge(ltp_head, ltp_step);
    b.edge(ltp_step, ltp_step);
    b.edge(ltp_step, rpe);
    b.edge(rpe, quantize);
    b.edge(quantize, frame_head);
    b.edge(quantize, exit);
    b.finish(entry, exit).expect("gsm CFG is well-formed")
}

pub(crate) fn trace(cfg: &Cfg, input: &InputSpec) -> Trace {
    let blk = |l: &str| cfg.block_by_label(l).expect("gsm cfg");
    let (entry, frame_head, autocorr, lpc, stfilter, ltp_head, ltp_step, rpe, quantize, exit) = (
        cfg.entry(),
        blk("frame_head"),
        blk("autocorr"),
        blk("lpc"),
        blk("stfilter"),
        blk("ltp_head"),
        blk("ltp_step"),
        blk("rpe"),
        blk("quantize"),
        cfg.exit(),
    );
    let mut rng = Lcg::new(input.seed);
    let mut tb = TraceBuilder::new(cfg);
    tb.step(entry, vec![]);
    let mut pcm = PCM_BASE;
    for _frame in 0..input.iterations as u64 {
        let addrs: Vec<u64> = (0..4).map(|k| pcm + k * 16).collect();
        tb.step(frame_head, addrs);
        // Overlapping analysis windows advance by a quarter frame, so most
        // of each window's lines are already resident.
        pcm += 64;

        // Autocorrelation: 9 lags x ~16 MAC steps over the (cache-resident)
        // window copy of the frame.
        let ac_steps = 140 + rng.below(24);
        for k in 0..ac_steps {
            let a = WINDOW_BASE + (k * 4) % 1024;
            let b2 = WINDOW_BASE + (k * 4 + 2 * (1 + rng.below(8))) % 1024;
            tb.step(autocorr, vec![a, b2]);
        }
        tb.step(lpc, vec![COEF_BASE + rng.below(64) * 2]);

        // Short-term filter: one pass over the frame window (two memory
        // ops per step against resident buffers).
        let st_steps = 60 + rng.below(20);
        for k in 0..st_steps {
            let a = WINDOW_BASE + 0x800 + (k * 4) % 1024;
            tb.step(stfilter, vec![a, a + 2]);
        }

        tb.step(ltp_head, vec![]);
        // Lag search: 4 subframes x ~40 candidate lags against the history
        // buffer.
        let lags = 140 + (input.complexity * 40.0) as u64 + rng.below(20);
        for _ in 0..lags {
            let h1 = HIST_BASE + rng.below(512) * 2;
            let h2 = HIST_BASE + rng.below(512) * 2;
            tb.step(ltp_step, vec![h1, h2]);
        }
        tb.step(rpe, vec![COEF_BASE + 0x1000 + rng.below(256) * 2]);
        tb.step(quantize, vec![COEF_BASE + 0x2000 + rng.below(64) * 2]);
    }
    tb.step(exit, vec![]);
    tb.finish().expect("gsm trace is a valid walk")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use dvs_sim::Machine;
    use dvs_vf::OperatingPoint;

    #[test]
    fn cfg_shape() {
        let cfg = build_cfg();
        assert_eq!(cfg.num_blocks(), 10);
        assert_eq!(cfg.num_edges(), 13);
    }

    #[test]
    fn frame_head_memory_arity_matches() {
        let cfg = build_cfg();
        let fh = cfg.block_by_label("frame_head").unwrap();
        assert_eq!(cfg.block(fh).mem_inst_count(), 4);
    }

    #[test]
    fn stalls_are_negligible() {
        let cfg = build_cfg();
        let mut input = Benchmark::GsmEncode.default_input();
        input.iterations = 40;
        let t = trace(&cfg, &input);
        let run = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        let stall_frac = run.stall_cycles / run.total_cycles;
        assert!(stall_frac < 0.15, "gsm stall fraction {stall_frac}");
    }
}
