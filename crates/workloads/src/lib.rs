//! Synthetic MediaBench-equivalent workloads.
//!
//! The paper evaluates on six applications — `adpcm/encode`, `epic`,
//! `gsm/encode`, `mpeg/decode`, `mpg123` and `ghostscript` — run to
//! completion on the inputs shipped with MediaBench (plus four MPEG test
//! bitstreams). Those binaries and inputs are not reproducible here, so
//! this crate builds one **synthetic equivalent** per benchmark: a CFG with
//! the benchmark's characteristic loop structure and instruction mix, and a
//! deterministic seeded trace generator whose memory footprint and branch
//! behaviour reproduce the *qualitative* profile the paper reports in
//! Table 7 (compute-bound `adpcm`/`gsm`, memory-heavy `epic`/`mpeg`, a
//! tiny `ghostscript`).
//!
//! Dynamic sizes are scaled down by roughly two orders of magnitude from
//! the originals so a full profile (one run per DVS mode) takes fractions
//! of a second; every experiment in the harness reports *shape* metrics
//! (ratios, orderings, crossovers) that survive this scaling.
//!
//! # Example
//!
//! ```
//! use dvs_workloads::Benchmark;
//!
//! let b = Benchmark::AdpcmEncode;
//! let cfg = b.build_cfg();
//! let trace = b.trace(&cfg, &b.default_input());
//! assert!(trace.len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adpcm;
mod epic;
mod ghostscript;
mod gsm;
mod mpeg;
mod mpg123;
mod rng;

pub use mpeg::{input as mpeg_input, MpegInput, MpegInputDesc, MPEG_INPUTS};
pub use rng::Lcg;

use dvs_ir::Cfg;
use dvs_sim::Trace;

/// Which synthetic benchmark to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// ADPCM speech encoder: tiny integer kernel, almost no memory traffic.
    AdpcmEncode,
    /// EPIC image compressor: FP filter pyramids over a large image,
    /// memory-heavy.
    Epic,
    /// GSM full-rate speech encoder: integer DSP over 160-sample frames.
    GsmEncode,
    /// MPEG-2 video decoder: IDCT + motion compensation, large reference
    /// frames, optional B-frame machinery.
    MpegDecode,
    /// MP3 audio decoder: subband synthesis dot products.
    Mpg123,
    /// PostScript renderer: branchy scanline rasterization, streaming
    /// stores.
    Ghostscript,
}

/// Input description driving a synthetic trace. Every field is
/// deterministic; the same spec always produces the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// Input name (e.g. `"clinton.pcm"`, `"flwr.m2v"`).
    pub name: String,
    /// RNG seed.
    pub seed: u64,
    /// Outer iteration count (samples / frames / pages, benchmark-specific
    /// units).
    pub iterations: usize,
    /// Data "complexity" in `[0, 1]`: steers branch probabilities and inner
    /// work amounts.
    pub complexity: f64,
    /// Benchmark-specific structural variant (for MPEG: whether the stream
    /// contains B frames).
    pub variant: bool,
}

impl Benchmark {
    /// All six benchmarks, in the paper's reporting order.
    #[must_use]
    pub fn all() -> [Benchmark; 6] {
        [
            Benchmark::AdpcmEncode,
            Benchmark::MpegDecode,
            Benchmark::GsmEncode,
            Benchmark::Epic,
            Benchmark::Ghostscript,
            Benchmark::Mpg123,
        ]
    }

    /// The four benchmarks the paper carries through Tables 1, 6 and 7.
    #[must_use]
    pub fn table7_set() -> [Benchmark; 4] {
        [
            Benchmark::AdpcmEncode,
            Benchmark::Epic,
            Benchmark::GsmEncode,
            Benchmark::MpegDecode,
        ]
    }

    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::AdpcmEncode => "adpcm/encode",
            Benchmark::Epic => "epic",
            Benchmark::GsmEncode => "gsm/encode",
            Benchmark::MpegDecode => "mpeg/decode",
            Benchmark::Mpg123 => "mpg123",
            Benchmark::Ghostscript => "ghostscript",
        }
    }

    /// Builds the benchmark's control-flow graph.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in benchmarks; CFG construction is
    /// validated by tests.
    #[must_use]
    pub fn build_cfg(self) -> Cfg {
        match self {
            Benchmark::AdpcmEncode => adpcm::build_cfg(),
            Benchmark::Epic => epic::build_cfg(),
            Benchmark::GsmEncode => gsm::build_cfg(),
            Benchmark::MpegDecode => mpeg::build_cfg(),
            Benchmark::Mpg123 => mpg123::build_cfg(),
            Benchmark::Ghostscript => ghostscript::build_cfg(),
        }
    }

    /// The input used when the paper says "the inputs provided with the
    /// suite".
    #[must_use]
    pub fn default_input(self) -> InputSpec {
        match self {
            Benchmark::AdpcmEncode => InputSpec {
                name: "clinton.pcm".into(),
                seed: 0xADCC_0001,
                iterations: 24_000,
                complexity: 0.5,
                variant: false,
            },
            Benchmark::Epic => InputSpec {
                name: "test_image.pgm".into(),
                seed: 0xE61C_0001,
                iterations: 96, // image rows
                complexity: 0.6,
                variant: false,
            },
            Benchmark::GsmEncode => InputSpec {
                name: "clinton.pcm".into(),
                seed: 0x65E0_0001,
                iterations: 260, // frames
                complexity: 0.5,
                variant: false,
            },
            Benchmark::MpegDecode => mpeg::input(mpeg::MpegInput::Flwr).spec(),
            Benchmark::Mpg123 => InputSpec {
                name: "test.mp3".into(),
                seed: 0x1323_0001,
                iterations: 220, // granules
                complexity: 0.5,
                variant: false,
            },
            Benchmark::Ghostscript => InputSpec {
                name: "tiger.ps".into(),
                seed: 0x6405_0001,
                iterations: 110, // scanline bands
                complexity: 0.5,
                variant: false,
            },
        }
    }

    /// Named alternative inputs for this benchmark (the default input
    /// first). MPEG exposes its four paper bitstreams; the others get a
    /// short/simple and a long/complex variant, mimicking MediaBench's
    /// multiple data files.
    #[must_use]
    pub fn inputs(self) -> Vec<InputSpec> {
        let base = self.default_input();
        match self {
            Benchmark::MpegDecode => MPEG_INPUTS.iter().map(|&k| mpeg::input(k).spec()).collect(),
            _ => {
                let mut small = base.clone();
                small.name = format!("{}.small", base.name);
                small.seed ^= 0x5A5A;
                small.iterations = (base.iterations / 3).max(8);
                small.complexity = (base.complexity * 0.6).max(0.05);
                let mut large = base.clone();
                large.name = format!("{}.complex", base.name);
                large.seed ^= 0xC3C3;
                large.iterations = base.iterations + base.iterations / 2;
                large.complexity = (base.complexity * 1.5).min(1.0);
                vec![base, small, large]
            }
        }
    }

    /// Generates the deterministic trace of `input` over `cfg` (which must
    /// be this benchmark's own CFG).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not the CFG built by [`Benchmark::build_cfg`] for
    /// this benchmark.
    #[must_use]
    pub fn trace(self, cfg: &Cfg, input: &InputSpec) -> Trace {
        match self {
            Benchmark::AdpcmEncode => adpcm::trace(cfg, input),
            Benchmark::Epic => epic::trace(cfg, input),
            Benchmark::GsmEncode => gsm::trace(cfg, input),
            Benchmark::MpegDecode => mpeg::trace(cfg, input),
            Benchmark::Mpg123 => mpg123::trace(cfg, input),
            Benchmark::Ghostscript => ghostscript::trace(cfg, input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_sim::Machine;
    use dvs_vf::OperatingPoint;

    #[test]
    fn all_benchmarks_build_and_trace() {
        for b in Benchmark::all() {
            let cfg = b.build_cfg();
            let input = b.default_input();
            let trace = b.trace(&cfg, &input);
            assert!(trace.len() > 50, "{}: trace too short", b.name());
            assert!(
                trace.dynamic_inst_count(&cfg) > 1_000,
                "{}: too few instructions",
                b.name()
            );
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for b in [Benchmark::AdpcmEncode, Benchmark::MpegDecode] {
            let cfg = b.build_cfg();
            let input = b.default_input();
            let t1 = b.trace(&cfg, &input);
            let t2 = b.trace(&cfg, &input);
            assert_eq!(t1, t2, "{} must be deterministic", b.name());
        }
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let b = Benchmark::Ghostscript;
        let cfg = b.build_cfg();
        let mut i1 = b.default_input();
        let mut i2 = b.default_input();
        i1.seed = 1;
        i2.seed = 2;
        assert_ne!(b.trace(&cfg, &i1), b.trace(&cfg, &i2));
    }

    #[test]
    fn alternative_inputs_differ_and_scale() {
        for b in [Benchmark::GsmEncode, Benchmark::Ghostscript] {
            let cfg = b.build_cfg();
            let inputs = b.inputs();
            assert!(inputs.len() >= 3, "{}: want >=3 inputs", b.name());
            let machine = Machine::paper_default();
            let times: Vec<f64> = inputs
                .iter()
                .map(|i| {
                    machine
                        .run(&cfg, &b.trace(&cfg, i), OperatingPoint::new(1.65, 800.0))
                        .total_time_us
                })
                .collect();
            // default, small, complex: small < default < complex.
            assert!(times[1] < times[0], "{}: small not smaller", b.name());
            assert!(times[2] > times[0], "{}: complex not larger", b.name());
        }
        // MPEG exposes exactly the paper's four bitstreams.
        assert_eq!(Benchmark::MpegDecode.inputs().len(), 4);
    }

    #[test]
    fn memory_character_matches_table7_ordering() {
        // epic and mpeg are the memory-heavy benchmarks (largest tinvariant
        // in Table 7); adpcm and gsm are compute-bound (gsm's tinv is
        // tiny). Verify the same ordering holds for the synthetics,
        // normalized by run length.
        let machine = Machine::paper_default();
        let point = OperatingPoint::new(1.65, 800.0);
        let mut stall_frac = std::collections::HashMap::new();
        for b in Benchmark::table7_set() {
            let cfg = b.build_cfg();
            let trace = b.trace(&cfg, &b.default_input());
            let run = machine.run(&cfg, &trace, point);
            stall_frac.insert(b.name(), run.stall_cycles / run.total_cycles);
        }
        let epic = stall_frac["epic"];
        let mpeg = stall_frac["mpeg/decode"];
        let gsm = stall_frac["gsm/encode"];
        assert!(
            epic > gsm,
            "epic ({epic:.4}) should stall more than gsm ({gsm:.4})"
        );
        assert!(
            mpeg > gsm,
            "mpeg ({mpeg:.4}) should stall more than gsm ({gsm:.4})"
        );
    }

    #[test]
    fn runtimes_scale_sublinearly_for_memory_bound() {
        // Table 4: mpeg's 200 vs 800 MHz runtime ratio is ~3.95 on paper
        // hardware; any memory-bound program must come in under the pure
        // 4.0 compute ratio.
        let machine = Machine::paper_default();
        let b = Benchmark::Epic;
        let cfg = b.build_cfg();
        let trace = b.trace(&cfg, &b.default_input());
        let t800 = machine
            .run(&cfg, &trace, OperatingPoint::new(1.65, 800.0))
            .total_time_us;
        let t200 = machine
            .run(&cfg, &trace, OperatingPoint::new(0.7, 200.0))
            .total_time_us;
        let ratio = t200 / t800;
        assert!(ratio < 4.0, "epic ratio {ratio} not sublinear");
        assert!(ratio > 1.5, "epic ratio {ratio} suspiciously flat");
    }
}
