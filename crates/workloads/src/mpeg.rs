//! Synthetic `mpeg/decode`: MPEG-2 video decoder.
//!
//! Per frame, the decoder loops over macroblocks doing inverse DCT
//! (integer multiply tree) and motion compensation (loads from one or two
//! large reference frames at motion-vector offsets — the memory-heavy
//! part). The paper's four test bitstreams fall into two categories:
//! `100b`/`bbc` have no B frames, `flwr`/`cact` use 2 B frames between
//! anchors; B frames execute an extra bidirectional-MC path, which is why
//! profiling only on a no-B input mis-estimates the B-heavy inputs
//! (§6.4, Fig. 19).

use crate::{InputSpec, Lcg};
use dvs_ir::{Cfg, CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{Trace, TraceBuilder};

const STREAM_BASE: u64 = 0x0100_0000;
const REF_FWD: u64 = 0x1000_0000; // forward reference frame (~1.5 MB)
const REF_BWD: u64 = 0x2000_0000; // backward reference frame
const FRAME_OUT: u64 = 0x3000_0000;
const REF_BYTES: u64 = 0x0018_0000; // 1.5 MB, far beyond L2
const QUANT_TABLE: u64 = 0x0480_0000; // 128 B, cache-resident
const CHROMA_BASE: u64 = 0x4000_0000; // quarter-size chroma planes

/// The paper's four MPEG test bitstreams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpegInput {
    /// `100b.m2v`: no B frames, low complexity.
    Hundredb,
    /// `bbc.m2v`: no B frames, high complexity.
    Bbc,
    /// `flwr.m2v`: 2 B frames between anchors.
    Flwr,
    /// `cact.m2v`: 2 B frames, high complexity.
    Cact,
}

/// All four inputs in the paper's order.
pub const MPEG_INPUTS: [MpegInput; 4] = [
    MpegInput::Hundredb,
    MpegInput::Bbc,
    MpegInput::Flwr,
    MpegInput::Cact,
];

/// Description of an MPEG input.
#[derive(Debug, Clone, Copy)]
pub struct MpegInputDesc {
    kind: MpegInput,
}

impl MpegInputDesc {
    /// The generic [`InputSpec`] for this bitstream.
    #[must_use]
    pub fn spec(&self) -> InputSpec {
        let (name, seed, complexity, b_frames) = match self.kind {
            MpegInput::Hundredb => ("100b.m2v", 0x100B_0001, 0.3, false),
            MpegInput::Bbc => ("bbc.m2v", 0x0BBC_0001, 0.8, false),
            MpegInput::Flwr => ("flwr.m2v", 0xF109_0001, 0.5, true),
            MpegInput::Cact => ("cact.m2v", 0xCAC7_0001, 0.8, true),
        };
        InputSpec {
            name: name.into(),
            seed,
            iterations: 30, // frames
            complexity,
            variant: b_frames,
        }
    }

    /// Whether this stream contains B frames (category 2 in §6.4).
    #[must_use]
    pub fn has_b_frames(&self) -> bool {
        self.spec().variant
    }
}

/// Looks up an input descriptor.
#[must_use]
pub fn input(kind: MpegInput) -> MpegInputDesc {
    MpegInputDesc { kind }
}

impl MpegInput {
    /// File-style name (`"flwr.m2v"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MpegInput::Hundredb => "100b.m2v",
            MpegInput::Bbc => "bbc.m2v",
            MpegInput::Flwr => "flwr.m2v",
            MpegInput::Cact => "cact.m2v",
        }
    }
}

/// Blocks: entry → frame_head → mb_head → vlc* → dequant → idct* →
/// (mc_intra | mc_fwd | mc_bidir) → chroma → mb_store → (mb_head |
/// frame_end) → display* → (frame_head | exit).
pub(crate) fn build_cfg() -> Cfg {
    let mut b = CfgBuilder::new("mpeg/decode");
    let entry = b.block("entry");
    let frame_head = b.block("frame_head");
    let mb_head = b.block("mb_head");
    let vlc = b.block("vlc");
    let idct = b.block("idct");
    let dequant = b.block("dequant");
    let mc_intra = b.block("mc_intra");
    let mc_fwd = b.block("mc_fwd");
    let mc_bidir = b.block("mc_bidir");
    let chroma = b.block("chroma");
    let mb_store = b.block("mb_store");
    let frame_end = b.block("frame_end");
    let display = b.block("display");
    let exit = b.block("exit");

    b.push_all(
        entry,
        (0..4).map(|i| Inst::alu(Opcode::IntAlu, Reg(1 + i), &[Reg(0)])),
    );

    // frame_head: parse picture header from the stream.
    b.push(frame_head, Inst::load(Reg(10), Reg(2), MemWidth::B4));
    b.push(frame_head, Inst::alu(Opcode::IntAlu, Reg(11), &[Reg(10)]));
    b.push(frame_head, Inst::alu(Opcode::IntAlu, Reg(12), &[Reg(11)]));

    // mb_head: macroblock header decode, branch on MB type.
    b.push(mb_head, Inst::load(Reg(13), Reg(2), MemWidth::B4));
    b.push(mb_head, Inst::alu(Opcode::IntAlu, Reg(14), &[Reg(13)]));
    b.push(mb_head, Inst::branch(Reg(14)));

    // vlc: coefficient run-length decode (dependent integer chain).
    b.push(vlc, Inst::load(Reg(15), Reg(2), MemWidth::B4));
    for i in 0..4 {
        b.push(vlc, Inst::alu(Opcode::IntAlu, Reg(16 + i), &[Reg(15 + i)]));
    }
    b.push(vlc, Inst::branch(Reg(19)));

    // dequant: inverse-quantize the coefficient block (table lookup +
    // multiply per slice).
    b.push(dequant, Inst::load(Reg(44), Reg(8), MemWidth::B2));
    b.push(
        dequant,
        Inst::alu(Opcode::IntMul, Reg(45), &[Reg(19), Reg(44)]),
    );
    b.push(dequant, Inst::alu(Opcode::IntAlu, Reg(16), &[Reg(45)]));

    // idct: 8-point butterfly slice — integer multiplies, good ILP.
    for i in 0..4 {
        b.push(idct, Inst::alu(Opcode::IntMul, Reg(20 + 2 * i), &[Reg(16)]));
        b.push(
            idct,
            Inst::alu(Opcode::IntAlu, Reg(21 + 2 * i), &[Reg(20 + 2 * i)]),
        );
    }
    b.push(idct, Inst::branch(Reg(27)));

    // mc_intra: no reference access, just a copy of decoded coefficients.
    b.push(mc_intra, Inst::alu(Opcode::IntAlu, Reg(30), &[Reg(27)]));
    b.push(mc_intra, Inst::alu(Opcode::IntAlu, Reg(31), &[Reg(30)]));

    // mc_fwd: forward prediction — two reference loads + average.
    b.push(mc_fwd, Inst::load(Reg(32), Reg(5), MemWidth::B8));
    b.push(mc_fwd, Inst::load(Reg(33), Reg(5), MemWidth::B8));
    b.push(
        mc_fwd,
        Inst::alu(Opcode::IntAlu, Reg(34), &[Reg(32), Reg(33)]),
    );
    b.push(
        mc_fwd,
        Inst::alu(Opcode::IntAlu, Reg(35), &[Reg(34), Reg(27)]),
    );

    // mc_bidir: bidirectional — loads from both references.
    b.push(mc_bidir, Inst::load(Reg(36), Reg(5), MemWidth::B8));
    b.push(mc_bidir, Inst::load(Reg(37), Reg(6), MemWidth::B8));
    b.push(mc_bidir, Inst::load(Reg(38), Reg(6), MemWidth::B8));
    b.push(
        mc_bidir,
        Inst::alu(Opcode::IntAlu, Reg(39), &[Reg(36), Reg(37)]),
    );
    b.push(
        mc_bidir,
        Inst::alu(Opcode::IntAlu, Reg(40), &[Reg(39), Reg(38)]),
    );
    b.push(
        mc_bidir,
        Inst::alu(Opcode::IntAlu, Reg(41), &[Reg(40), Reg(27)]),
    );

    // chroma: motion-compensate the two chroma blocks (cache-friendly:
    // chroma planes are a quarter the size of luma).
    b.push(chroma, Inst::load(Reg(46), Reg(9), MemWidth::B8));
    b.push(
        chroma,
        Inst::alu(Opcode::IntAlu, Reg(47), &[Reg(46), Reg(41)]),
    );
    b.push(chroma, Inst::alu(Opcode::IntAlu, Reg(48), &[Reg(47)]));

    // mb_store: write the reconstructed macroblock row.
    b.push(mb_store, Inst::store(Reg(41), Reg(7), MemWidth::B8));
    b.push(mb_store, Inst::store(Reg(41), Reg(7), MemWidth::B8));
    b.push(mb_store, Inst::branch(Reg(41)));

    // frame_end: reference frame bookkeeping.
    b.push(frame_end, Inst::alu(Opcode::IntAlu, Reg(42), &[Reg(41)]));

    // display: 4:2:0 -> 4:2:2 chroma upsampling sweep over the output
    // frame (sequential, warm lines from mb_store).
    b.push(display, Inst::load(Reg(49), Reg(7), MemWidth::B8));
    b.push(display, Inst::alu(Opcode::IntAlu, Reg(50), &[Reg(49)]));
    b.push(display, Inst::store(Reg(50), Reg(7), MemWidth::B8));
    b.push(display, Inst::branch(Reg(50)));

    b.edge(entry, frame_head);
    b.edge(frame_head, mb_head);
    b.edge(mb_head, vlc);
    b.edge(vlc, vlc);
    b.edge(vlc, dequant);
    b.edge(dequant, idct);
    b.edge(idct, idct);
    b.edge(idct, mc_intra);
    b.edge(idct, mc_fwd);
    b.edge(idct, mc_bidir);
    b.edge(mc_intra, chroma);
    b.edge(mc_fwd, chroma);
    b.edge(mc_bidir, chroma);
    b.edge(chroma, mb_store);
    b.edge(mb_store, mb_head);
    b.edge(mb_store, frame_end);
    b.edge(frame_end, display);
    b.edge(display, display);
    b.edge(display, frame_head);
    b.edge(display, exit);
    b.finish(entry, exit).expect("mpeg CFG is well-formed")
}

pub(crate) fn trace(cfg: &Cfg, inp: &InputSpec) -> Trace {
    let blk = |l: &str| cfg.block_by_label(l).expect("mpeg cfg");
    let (entry, frame_head, mb_head, vlc, idct) = (
        cfg.entry(),
        blk("frame_head"),
        blk("mb_head"),
        blk("vlc"),
        blk("idct"),
    );
    let (dequant, mc_intra, mc_fwd, mc_bidir, chroma, mb_store, frame_end, display, exit) = (
        blk("dequant"),
        blk("mc_intra"),
        blk("mc_fwd"),
        blk("mc_bidir"),
        blk("chroma"),
        blk("mb_store"),
        blk("frame_end"),
        blk("display"),
        cfg.exit(),
    );
    let mut rng = Lcg::new(inp.seed);
    let mut tb = TraceBuilder::new(cfg);
    tb.step(entry, vec![]);
    let mut stream = STREAM_BASE;
    let macroblocks = 72u64;
    for frame in 0..inp.iterations as u64 {
        // GOP pattern: with B frames the sequence is I B B P B B P...;
        // without it is I P P P...
        let is_b = inp.variant && frame % 3 != 0;
        let is_i = frame % 9 == 0;
        tb.step(frame_head, vec![stream]);
        stream += 16;
        for mb in 0..macroblocks {
            tb.step(mb_head, vec![stream]);
            stream += 8;
            // Coefficient density scales with complexity.
            let vlc_runs = 2 + (4.0 * inp.complexity) as u64 + rng.below(3);
            for _ in 0..vlc_runs {
                tb.step(vlc, vec![stream]);
                stream += 2;
            }
            tb.step(dequant, vec![QUANT_TABLE + rng.below(64) * 2]);
            let idct_slices = 16 + rng.below(6);
            for _ in 0..idct_slices {
                tb.step(idct, vec![]);
            }
            // Motion compensation: most vectors are short (the reference
            // region around the macroblock is still cached from neighbours),
            // with occasional long jumps whose rate grows with complexity.
            let near = 8 * 1024u64;
            let long_jump_p = 0.02 + 0.05 * inp.complexity;
            let intra = is_i || rng.chance(0.1);
            let mv = |base: u64, rng: &mut Lcg| {
                let off = if rng.chance(long_jump_p) {
                    rng.below(REF_BYTES)
                } else {
                    rng.below(near)
                };
                base + (mb * 1024 + off) % REF_BYTES
            };
            if intra {
                tb.step(mc_intra, vec![]);
            } else if is_b {
                let a = mv(REF_FWD, &mut rng);
                let b2 = mv(REF_BWD, &mut rng);
                let c = mv(REF_BWD, &mut rng);
                tb.step(mc_bidir, vec![a, b2, c]);
            } else {
                let a = mv(REF_FWD, &mut rng);
                let b2 = mv(REF_FWD, &mut rng);
                tb.step(mc_fwd, vec![a, b2]);
            }
            // Chroma MC: quarter-size planes, short vectors — warm.
            let ch = CHROMA_BASE + (mb * 256 + rng.below(2048)) % 0x4_0000;
            tb.step(chroma, vec![ch]);
            let out = FRAME_OUT + (frame % 2) * REF_BYTES + mb * 1024;
            tb.step(mb_store, vec![out, out + 8]);
        }
        tb.step(frame_end, vec![]);
        // Display: upsample a sweep of the just-written frame (warm lines).
        let sweeps = 24 + rng.below(8);
        for k in 0..sweeps {
            let p = FRAME_OUT + (frame % 2) * REF_BYTES + (k * 512) % (72 * 1024);
            tb.step(display, vec![p, p + 8]);
        }
    }
    tb.step(exit, vec![]);
    tb.finish().expect("mpeg trace is a valid walk")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_sim::Machine;
    use dvs_vf::OperatingPoint;

    #[test]
    fn cfg_shape() {
        let cfg = build_cfg();
        assert_eq!(cfg.num_blocks(), 14);
        assert_eq!(cfg.num_edges(), 20);
    }

    #[test]
    fn b_frame_inputs_execute_bidir_path() {
        let cfg = build_cfg();
        let bidir = cfg.block_by_label("mc_bidir").unwrap();
        let flwr = trace(&cfg, &input(MpegInput::Flwr).spec());
        assert!(flwr.walk().contains(&bidir), "flwr should take mc_bidir");
        let bbc = trace(&cfg, &input(MpegInput::Bbc).spec());
        assert!(!bbc.walk().contains(&bidir), "bbc must not take mc_bidir");
    }

    #[test]
    fn categories_split_two_by_two() {
        let with_b: Vec<_> = MPEG_INPUTS
            .iter()
            .filter(|&&k| input(k).has_b_frames())
            .collect();
        assert_eq!(with_b.len(), 2);
    }

    #[test]
    fn motion_compensation_is_memory_heavy() {
        let cfg = build_cfg();
        let mut spec = input(MpegInput::Flwr).spec();
        spec.iterations = 6;
        let t = trace(&cfg, &spec);
        let run = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        assert!(run.dram_accesses > 200, "dram = {}", run.dram_accesses);
    }

    #[test]
    fn complex_inputs_run_longer() {
        let cfg = build_cfg();
        let machine = Machine::paper_default();
        let pt = OperatingPoint::new(1.65, 800.0);
        let mut simple = input(MpegInput::Hundredb).spec();
        let mut complex = input(MpegInput::Bbc).spec();
        simple.iterations = 6;
        complex.iterations = 6;
        let t_simple = machine.run(&cfg, &trace(&cfg, &simple), pt).total_time_us;
        let t_complex = machine.run(&cfg, &trace(&cfg, &complex), pt).total_time_us;
        assert!(
            t_complex > t_simple,
            "bbc ({t_complex}) should outlast 100b ({t_simple})"
        );
    }
}
