//! Synthetic `mpg123`: MPEG-1 layer-III audio decoder.
//!
//! The hot code is polyphase subband synthesis: per granule, 32 subband
//! dot products against a 512-entry window table (FP multiply-accumulate),
//! preceded by Huffman decoding (branchy integer work). Working sets are
//! table-sized and cache-resident, so the profile is FP-heavy with modest
//! memory traffic.

use crate::{InputSpec, Lcg};
use dvs_ir::{Cfg, CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{Trace, TraceBuilder};

const STREAM_BASE: u64 = 0x0100_0000;
const WINDOW_TABLE: u64 = 0x0600_0000; // 2 KB window, cache-resident
const SYNTH_BUF: u64 = 0x0700_0000; // rolling synthesis buffer, 4 KB
const PCM_OUT: u64 = 0x0900_0000;

/// Blocks: entry → gr_head → huffman (looped) → dequant → alias (looped) →
/// synth (looped) → window → stereo → (gr_head | exit).
pub(crate) fn build_cfg() -> Cfg {
    let mut b = CfgBuilder::new("mpg123");
    let entry = b.block("entry");
    let gr_head = b.block("gr_head");
    let huffman = b.block("huffman");
    let dequant = b.block("dequant");
    let alias = b.block("alias");
    let synth = b.block("synth");
    let window = b.block("window");
    let stereo = b.block("stereo");
    let exit = b.block("exit");

    b.push_all(
        entry,
        (0..3).map(|i| Inst::alu(Opcode::IntAlu, Reg(1 + i), &[Reg(0)])),
    );

    // gr_head: side-info parse.
    b.push(gr_head, Inst::load(Reg(10), Reg(2), MemWidth::B4));
    b.push(gr_head, Inst::alu(Opcode::IntAlu, Reg(11), &[Reg(10)]));

    // huffman: bit-serial decode — dependent integer chain with a branch.
    b.push(huffman, Inst::load(Reg(12), Reg(2), MemWidth::B4));
    b.push(
        huffman,
        Inst::alu(Opcode::IntAlu, Reg(13), &[Reg(12), Reg(13)]),
    );
    b.push(huffman, Inst::alu(Opcode::IntAlu, Reg(14), &[Reg(13)]));
    b.push(huffman, Inst::branch(Reg(14)));

    // dequant: scale-factor multiply + pow approximation.
    b.push(dequant, Inst::alu(Opcode::FpMul, Reg(15), &[Reg(14)]));
    b.push(dequant, Inst::alu(Opcode::FpMul, Reg(16), &[Reg(15)]));
    b.push(dequant, Inst::alu(Opcode::FpAdd, Reg(17), &[Reg(16)]));

    // alias: butterfly alias-reduction between adjacent subbands.
    b.push(alias, Inst::alu(Opcode::FpMul, Reg(26), &[Reg(17)]));
    b.push(alias, Inst::alu(Opcode::FpMul, Reg(27), &[Reg(17)]));
    b.push(
        alias,
        Inst::alu(Opcode::FpAdd, Reg(28), &[Reg(26), Reg(27)]),
    );
    b.push(alias, Inst::branch(Reg(28)));

    // synth: one subband dot-product step (2 loads + FP MAC).
    b.push(synth, Inst::load(Reg(18), Reg(3), MemWidth::B4));
    b.push(synth, Inst::load(Reg(19), Reg(4), MemWidth::B4));
    b.push(
        synth,
        Inst::alu(Opcode::FpMul, Reg(20), &[Reg(18), Reg(19)]),
    );
    b.push(
        synth,
        Inst::alu(Opcode::FpAdd, Reg(21), &[Reg(20), Reg(21)]),
    );
    b.push(synth, Inst::branch(Reg(21)));

    // window: fold + clamp + store PCM samples.
    b.push(window, Inst::alu(Opcode::FpMul, Reg(22), &[Reg(21)]));
    b.push(window, Inst::alu(Opcode::FpAdd, Reg(23), &[Reg(22)]));
    b.push(window, Inst::alu(Opcode::IntAlu, Reg(24), &[Reg(23)]));
    b.push(window, Inst::store(Reg(24), Reg(5), MemWidth::B2));

    // stereo: mid/side reconstruction + interleaved PCM store.
    b.push(stereo, Inst::alu(Opcode::FpAdd, Reg(29), &[Reg(23)]));
    b.push(stereo, Inst::alu(Opcode::FpAdd, Reg(30), &[Reg(23)]));
    b.push(stereo, Inst::store(Reg(29), Reg(5), MemWidth::B2));
    b.push(stereo, Inst::store(Reg(30), Reg(5), MemWidth::B2));
    b.push(stereo, Inst::branch(Reg(30)));

    b.edge(entry, gr_head);
    b.edge(gr_head, huffman);
    b.edge(huffman, huffman);
    b.edge(huffman, dequant);
    b.edge(dequant, alias);
    b.edge(alias, alias);
    b.edge(alias, synth);
    b.edge(synth, synth);
    b.edge(synth, window);
    b.edge(window, stereo);
    b.edge(stereo, gr_head);
    b.edge(stereo, exit);
    b.finish(entry, exit).expect("mpg123 CFG is well-formed")
}

pub(crate) fn trace(cfg: &Cfg, input: &InputSpec) -> Trace {
    let blk = |l: &str| cfg.block_by_label(l).expect("mpg123 cfg");
    let (entry, gr_head, huffman, dequant, alias, synth, window, stereo, exit) = (
        cfg.entry(),
        blk("gr_head"),
        blk("huffman"),
        blk("dequant"),
        blk("alias"),
        blk("synth"),
        blk("window"),
        blk("stereo"),
        cfg.exit(),
    );
    let mut rng = Lcg::new(input.seed);
    let mut tb = TraceBuilder::new(cfg);
    tb.step(entry, vec![]);
    let mut stream = STREAM_BASE;
    for gr in 0..input.iterations as u64 {
        tb.step(gr_head, vec![stream]);
        stream += 32;
        let symbols = 20 + (20.0 * input.complexity) as u64 + rng.below(10);
        for _ in 0..symbols {
            tb.step(huffman, vec![stream]);
            stream += 4;
        }
        tb.step(dequant, vec![]);
        // 31 butterfly pairs of alias reduction.
        for _ in 0..31 {
            tb.step(alias, vec![]);
        }
        // 32 subbands x 8 MAC steps against window + rolling buffer.
        for sb in 0..32u64 {
            for k in 0..8u64 {
                let w = WINDOW_TABLE + ((sb * 8 + k) % 512) * 4;
                let s = SYNTH_BUF + ((gr * 32 + sb * 8 + k) % 1024) * 4;
                tb.step(synth, vec![w, s]);
            }
        }
        tb.step(window, vec![PCM_OUT + gr * 64]);
        tb.step(stereo, vec![PCM_OUT + gr * 64 + 2, PCM_OUT + gr * 64 + 4]);
    }
    tb.step(exit, vec![]);
    tb.finish().expect("mpg123 trace is a valid walk")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use dvs_sim::Machine;
    use dvs_vf::OperatingPoint;

    #[test]
    fn cfg_shape() {
        let cfg = build_cfg();
        assert_eq!(cfg.num_blocks(), 9);
        assert_eq!(cfg.num_edges(), 12);
    }

    #[test]
    fn fp_heavy_and_cache_resident() {
        let cfg = build_cfg();
        let mut input = Benchmark::Mpg123.default_input();
        input.iterations = 30;
        let t = trace(&cfg, &input);
        let run = Machine::paper_default().run(&cfg, &t, OperatingPoint::new(1.65, 800.0));
        // Tables are cache-resident: very low D-miss rate after warm-up.
        assert!(
            run.l1d.miss_rate() < 0.1,
            "miss rate {}",
            run.l1d.miss_rate()
        );
        assert!(run.committed_insts > 10_000);
    }
}
