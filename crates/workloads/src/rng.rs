/// A tiny deterministic linear-congruential generator.
///
/// Workload traces must be bit-reproducible across runs and platforms (the
/// paper re-simulates the *same* execution at every DVS mode), so the
/// generators use this fixed LCG rather than an external RNG whose stream
/// might change between versions.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeds the generator. A zero seed is remapped to a fixed constant.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // Knuth MMIX multiplier.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Scramble the high bits down (low LCG bits are weak).
        let x = self.state;
        (x >> 29) ^ (x >> 7) ^ x
    }

    /// Uniform value in `[0, n)`. Returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Lcg::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Lcg::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Lcg::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unit_in_range_and_varied() {
        let mut r = Lcg::new(13);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.25;
            hi |= u > 0.75;
        }
        assert!(lo && hi);
    }
}
