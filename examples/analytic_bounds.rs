//! Explore the paper's §3 analytical model interactively-ish: for a
//! MediaBench-style workload, extract the four program parameters from
//! simulation and print the energy-savings bound for several voltage
//! ladders and deadlines, next to what the MILP actually achieves.
//!
//! ```text
//! cargo run --release --example analytic_bounds
//! ```

use compile_time_dvs::prelude::*;

fn main() {
    let law = AlphaPower::paper();
    let benchmark = Benchmark::Epic;
    let cfg = benchmark.build_cfg();
    let trace = benchmark.trace(&cfg, &benchmark.default_input());
    let machine = Machine::paper_default();

    println!("benchmark: {}\n", benchmark.name());

    // Program parameters from cycle-level simulation (paper Table 7).
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let ladder3 = VoltageLadder::xscale3(&law);
    let compiler = DvsCompiler::builder(
        machine.clone(),
        ladder3.clone(),
        TransitionModel::with_capacitance_uf(0.2),
    )
    .build()
    .expect("valid compiler settings");
    let (profile, runs) = compiler.profile(&cfg, &trace);
    let params = analyze_params(&runs);
    println!(
        "params: Noverlap={:.0}  Ndependent={:.0}  Ncache={:.0} cycles, tinvariant={:.1} µs",
        params.n_overlap, params.n_dependent, params.n_cache, params.t_invariant_us
    );

    let continuous = ContinuousModel::paper();
    println!(
        "\n{:<10} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "deadline", "µs", "continuous", "3 levels", "7 levels", "13 levels"
    );
    for i in 1..=5usize {
        let d = scheme.deadline_us(i);
        let cont = continuous
            .savings(&params, d)
            .map_or("inf.".to_string(), |s| format!("{s:.3}"));
        let mut cells = Vec::new();
        for n in [3usize, 7, 13] {
            let ladder = if n == 3 {
                VoltageLadder::xscale3(&law)
            } else {
                VoltageLadder::interpolated(&law, n).expect("valid ladder")
            };
            let s = DiscreteModel::new(ladder)
                .savings(&params, d)
                .map_or("inf.".to_string(), |s| format!("{s:.3}"));
            cells.push(s);
        }
        println!(
            "{:<10} {:>12.1} {:>12} {:>10} {:>10} {:>10}",
            format!("D{i}"),
            d,
            cont,
            cells[0],
            cells[1],
            cells[2]
        );
    }

    // What the practical MILP extracts of that bound (paper §6.5).
    println!("\nMILP-achieved savings vs analytical bound (3-level ladder):");
    for i in 1..=5usize {
        let d = scheme.deadline_us(i);
        let bound = DiscreteModel::new(ladder3.clone())
            .savings(&params, d)
            .unwrap_or(0.0);
        match compiler.compile(&cfg, &profile, d) {
            Ok(res) => {
                let milp = res.savings_vs_single().unwrap_or(0.0);
                println!("  D{i}: bound {bound:.3}  milp {milp:.3}");
            }
            Err(_) => println!("  D{i}: infeasible"),
        }
    }
    println!("\nThe analytical bound ignores switching costs, so the MILP column");
    println!("generally sits at or below it (the paper's §6.5 check). Small");
    println!("overshoots can occur because the MILP optimizes per-block while the");
    println!("model lumps all computation — the paper itself reports one such");
    println!("exception for gsm and attributes it to rounding.");
}
