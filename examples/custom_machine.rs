//! Sweep a machine parameter: how does the benefit of compile-time DVS
//! change as main memory gets slower (the paper's "extrapolate into the
//! future" use of the analytical model)?
//!
//! As memory latency grows, `tinvariant` grows, programs become
//! memory-dominated, and the two-frequency optimum pulls further away from
//! the best single frequency.
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use compile_time_dvs::prelude::*;
use compile_time_dvs::sim::{EnergyModel, SimConfig};

fn main() {
    let b = Benchmark::MpegDecode;
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());

    println!(
        "benchmark: {} — analytical DVS bound vs memory latency\n",
        b.name()
    );
    println!(
        "{:>16} {:>12} {:>12} {:>10} {:>10}",
        "mem latency (ns)", "t800 (µs)", "tinv (µs)", "D4 bound", "D5 bound"
    );
    for mem_ns in [40.0, 80.0, 160.0, 320.0, 640.0] {
        let config = SimConfig {
            mem_latency_us: mem_ns / 1000.0,
            ..SimConfig::default()
        };
        let machine = Machine::new(config, EnergyModel::default());
        let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
        let (_, runs) = ModeProfiler::new(machine).profile(&cfg, &trace, &ladder);
        let params = analyze_params(&runs);
        let model = DiscreteModel::new(ladder.clone());
        let s4 = model
            .savings(&params, scheme.deadline_us(4))
            .map_or("inf.".to_string(), |s| format!("{s:.3}"));
        let s5 = model
            .savings(&params, scheme.deadline_us(5))
            .map_or("inf.".to_string(), |s| format!("{s:.3}"));
        let t800 = runs.last().expect("runs").total_time_us;
        println!(
            "{mem_ns:>16.0} {:>12.1} {:>12.1} {:>10} {:>10}",
            t800, params.t_invariant_us, s4, s5
        );
    }
    println!("\nSlower memory grows the frequency-invariant stall time tinvariant —");
    println!("the asynchronous window a slow clock can hide work in. The savings");
    println!("bound stays high as the machine becomes memory-dominated even though");
    println!("the deadlines themselves stretch with the longer runtimes.");
}
