//! Compare the paper's static MILP against Lee–Sakurai-style interval
//! voltage hopping (run-time time-slicing) across the whole suite, on a
//! custom frequency-defined ladder.
//!
//! Structure matters: the MILP needs *regions* with different
//! memory/compute balance to place mode-sets between; hopping needs only
//! slack. On a homogeneous single loop hopping wins; with real phases the
//! MILP wins.
//!
//! ```text
//! cargo run --release --example interval_hopping
//! ```

use compile_time_dvs::prelude::*;

fn main() {
    // A custom ladder defined by frequency steps (e.g. a part documented
    // as 150/300/600 MHz), voltages from the alpha-power law.
    let law = AlphaPower::paper();
    let ladder = VoltageLadder::from_frequencies(&law, &[150.0, 300.0, 600.0])
        .expect("frequencies within the law's range");
    println!("ladder:");
    for (_, p) in ladder.iter() {
        println!("  {p}");
    }

    let machine = Machine::paper_default();
    println!(
        "\n{:<14} {:>10} {:>12} {:>12} {:>14}",
        "benchmark", "deadline", "single (µJ)", "MILP (µJ)", "hopping (µJ)"
    );
    for b in Benchmark::all() {
        let cfg = b.build_cfg();
        let trace = b.trace(&cfg, &b.default_input());
        let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
        // A deadline between the ladder's fast and slow runtimes.
        let tm = TransitionModel::with_capacitance_uf(0.02);
        let compiler = DvsCompiler::builder(machine.clone(), ladder.clone(), tm)
            .build()
            .expect("valid compiler settings");
        let (profile, runs) = compiler.profile(&cfg, &trace);
        let t_fast = runs.last().expect("runs").total_time_us;
        let t_slow = runs[0].total_time_us;
        let deadline = t_fast + 0.6 * (t_slow - t_fast);
        let _ = scheme; // reference runtimes available if needed

        let single = baseline::best_single_mode(&profile, &ladder, deadline)
            .map_or("inf.".to_string(), |(_, _, e)| format!("{e:.1}"));
        let milp = compiler
            .compile(&cfg, &profile, deadline)
            .map_or("inf.".to_string(), |r| {
                format!("{:.1}", r.milp.predicted_energy_uj)
            });
        let tm = TransitionModel::with_capacitance_uf(0.02);
        let hop = baseline::lee_sakurai(&profile, &ladder, &tm, deadline, deadline / 40.0)
            .map_or("inf.".to_string(), |l| format!("{:.1}", l.energy_uj));
        println!(
            "{:<14} {:>10.1} {:>12} {:>12} {:>14}",
            b.name(),
            deadline,
            single,
            milp,
            hop
        );
    }
    println!("\nHopping assumes a run-time timer can inject mode-sets anywhere;");
    println!("the MILP's schedule is purely static. See EXPERIMENTS.md (`hopping`).");
}
