//! The paper's §6.4 study as a runnable scenario: how sensitive is the DVS
//! schedule to the input used for profiling, and how the multi-category
//! MILP fixes it.
//!
//! The MPEG workload ships four inputs in two categories (with and without
//! B frames). Profiling on a no-B-frame input mis-estimates the B-frame
//! machinery; the multi-category formulation optimizes the weighted
//! average while enforcing both deadlines.
//!
//! ```text
//! cargo run --release --example mpeg_multi_input
//! ```

use compile_time_dvs::compiler::{CategoryProfile, MultiCategory};
use compile_time_dvs::prelude::*;
use compile_time_dvs::workloads::{mpeg_input, MpegInput, MPEG_INPUTS};

fn main() {
    let b = Benchmark::MpegDecode;
    let cfg = b.build_cfg();
    let machine = Machine::paper_default();
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
    let tm = TransitionModel::with_capacitance_uf(0.03);
    let profiler = ModeProfiler::new(machine.clone());

    // Profile every input; deadline = its own D3 (just above the 600 MHz
    // runtime).
    let mut data = Vec::new();
    for &k in &MPEG_INPUTS {
        let spec = mpeg_input(k).spec();
        let trace = b.trace(&cfg, &spec);
        let (profile, _) = profiler.profile(&cfg, &trace, &ladder);
        let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
        let d3 = scheme.deadline_us(3);
        println!(
            "{:<10} category {}   deadline D3 = {:.1} µs",
            k.name(),
            if mpeg_input(k).has_b_frames() {
                "2-B-frames"
            } else {
                "no-B-frames"
            },
            d3
        );
        data.push((k, trace, profile, d3));
    }

    // Schedule from the bbc profile (no B frames)...
    let bbc = data
        .iter()
        .find(|(k, ..)| *k == MpegInput::Bbc)
        .expect("bbc present");
    let bbc_schedule = MilpFormulation::new(&cfg, &bbc.2, &ladder, &tm, bbc.3)
        .solve()
        .expect("bbc deadline feasible")
        .schedule;

    // ...and from the equal-weight average of flwr and bbc (§4.3).
    let cats: Vec<CategoryProfile> = data
        .iter()
        .filter(|(k, ..)| matches!(k, MpegInput::Flwr | MpegInput::Bbc))
        .map(|(_, _, p, d)| CategoryProfile {
            weight: 0.5,
            profile: p.clone(),
            deadline_us: *d,
        })
        .collect();
    let avg_schedule = MultiCategory::new(&cfg, &cats, &ladder, &tm)
        .solve()
        .expect("joint deadlines feasible")
        .schedule;

    println!(
        "\n{:<10} {:>14} {:>16} {:>18}",
        "input", "deadline (µs)", "bbc-profiled", "average-profiled"
    );
    for (k, trace, _, d) in &data {
        let t_bbc = machine
            .run_scheduled(&cfg, trace, &ladder, &bbc_schedule, &tm)
            .time_us;
        let t_avg = machine
            .run_scheduled(&cfg, trace, &ladder, &avg_schedule, &tm)
            .time_us;
        let mark = |t: f64| if t <= *d { "ok " } else { "MISS" };
        println!(
            "{:<10} {:>14.1} {:>11.1} {} {:>13.1} {}",
            k.name(),
            d,
            t_bbc,
            mark(t_bbc),
            t_avg,
            mark(t_avg)
        );
    }
    println!("\nProfiles gathered on a no-B-frame stream mis-predict the B-frame");
    println!("inputs (the paper's Fig. 19); the multi-category schedule meets every");
    println!("deadline it optimized for.");
}
