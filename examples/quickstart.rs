//! Quickstart: compile-time DVS for a small two-phase program.
//!
//! Builds a program with a memory-bound phase followed by a compute-bound
//! phase, profiles it on the cycle-level simulator, runs the MILP pass, and
//! prints the chosen schedule next to the single-frequency baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use compile_time_dvs::prelude::*;

fn main() {
    // --- 1. Build a program: stream loads, then crunch numbers. ---------
    let mut b = CfgBuilder::new("quickstart");
    let entry = b.block("entry");
    let memloop = b.block("memloop");
    let comploop = b.block("comploop");
    let exit = b.block("exit");
    b.push(memloop, Inst::load(Reg(1), Reg(2), MemWidth::B4));
    b.push(memloop, Inst::alu(Opcode::IntAlu, Reg(3), &[Reg(1)]));
    b.push(memloop, Inst::branch(Reg(3)));
    for _ in 0..12 {
        b.push(comploop, Inst::alu(Opcode::IntAlu, Reg(4), &[Reg(4)]));
    }
    b.push(comploop, Inst::branch(Reg(4)));
    b.edge(entry, memloop);
    b.edge(memloop, memloop);
    b.edge(memloop, comploop);
    b.edge(comploop, comploop);
    b.edge(comploop, exit);
    let cfg = b.finish(entry, exit).expect("valid CFG");

    // --- 2. One execution: 600 strided misses, then 600 compute trips. --
    let mut tb = TraceBuilder::new(&cfg);
    tb.step(entry, vec![]);
    for i in 0..600u64 {
        tb.step(memloop, vec![0x10_0000 + i * 4096]);
    }
    for _ in 0..600 {
        tb.step(comploop, vec![]);
    }
    tb.step(exit, vec![]);
    let trace = tb.finish().expect("valid trace");

    // --- 3. The compile-time DVS pass. -----------------------------------
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
    let compiler = DvsCompiler::builder(
        Machine::paper_default(),
        ladder.clone(),
        TransitionModel::with_capacitance_uf(0.05),
    )
    .build()
    .expect("valid compiler settings");
    let (profile, runs) = compiler.profile(&cfg, &trace);

    let t_fast = runs.last().expect("runs").total_time_us;
    let t_slow = runs[0].total_time_us;
    println!("runtime at 800 MHz: {t_fast:.1} µs, at 200 MHz: {t_slow:.1} µs");

    let deadline = t_fast + 0.5 * (t_slow - t_fast);
    println!("deadline: {deadline:.1} µs\n");

    let result = compiler
        .compile_and_validate(&cfg, &trace, &profile, deadline)
        .expect("deadline is feasible");

    // --- 4. Report. -------------------------------------------------------
    let (mode, t_single, e_single) = result.single_mode.expect("a single mode fits");
    println!(
        "best single mode : {} -> {:.1} µs, {:.1} µJ",
        ladder.point(mode),
        t_single,
        e_single
    );
    println!(
        "MILP schedule    : {:.1} µs predicted, {:.1} µJ predicted",
        result.milp.predicted_time_us, result.milp.predicted_energy_uj
    );
    let v = result.validated.expect("validated");
    println!(
        "re-simulated     : {:.1} µs measured,  {:.1} µJ measured, {} transitions",
        v.time_us, v.processor_energy_uj, v.transitions
    );
    println!(
        "savings vs single-frequency baseline: {:.1}%",
        100.0 * result.savings_vs_single().unwrap_or(0.0)
    );
    println!("\nper-edge modes:");
    for e in cfg.edges() {
        println!(
            "  {} -> {}: {}",
            cfg.block(e.src).label,
            cfg.block(e.dst).label,
            ladder.point(result.milp.schedule.edge_modes[e.id.index()])
        );
    }
}
