#!/usr/bin/env python3
"""Validate a dvsc bench-replay report, optionally against a baseline.

Usage: validate_bench_replay.py REPORT.json [BASELINE.json] [--speedup-floor X]

Checks the `dvs-bench-replay.v1` schema: required top-level and per-case
keys, every cell's rep-0 agreement sweep passing (`agreement_ok` true
with `max_rel_err` within the 1e-6 differential tolerance), totals
consistent with the case list, and the report's median batched-replay
speedup at or above a floor. The floor defaults to 10 — the acceptance
bar the committed baseline pins — and can be lowered for fresh runs on
noisy CI machines with `--speedup-floor` (the floor always applies at
10 to a BASELINE, which was produced on a quiet machine and committed
deliberately). With a BASELINE, additionally diffs the deterministic
fields of every case whose name appears in both reports — bytecode
shape, agreement results, workload coordinates — while `wall_us`,
`speedup` and `reps` (the knobs a quick run is allowed to move) are
never compared. Exits nonzero on the first class of failure, printing
every instance of it.
"""

import json
import sys

TOP_KEYS = {"schema", "mode", "totals", "speedup", "cases"}
TOTALS_KEYS = {"cases", "trace_insts", "block_ops", "variants", "agreement_ok"}
SPEEDUP_KEYS = {"median", "min", "max"}
CASE_KEYS = {
    "name",
    "seed",
    "max_blocks",
    "blocks",
    "edges",
    "levels",
    "schedules",
    "reps",
    "bytecode",
    "agreement_ok",
    "max_rel_err",
    "wall_us",
    "speedup",
}
BYTECODE_KEYS = {"trace_blocks", "trace_insts", "block_ops", "variants", "variant_insts"}
CASE_SPEEDUP_KEYS = {"p50", "min", "max"}
PCTL_KEYS = {"mean", "p50", "p90", "max"}
# The differential tolerance the replay runtime is fuzzed against
# (tests/replay_differential.rs and the bytecode-replay check oracle).
AGREEMENT_REL = 1e-6
# The per-case fields that must match a baseline bit-for-bit. Wall clock
# and the speedups derived from it are machine-dependent; `reps` is the
# one knob a quick run moves.
DETERMINISTIC_CASE_KEYS = CASE_KEYS - {"reps", "wall_us", "speedup"}


def fail(errors, label):
    if errors:
        print(f"{label}:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        sys.exit(1)


def check_schema(report, path, floor):
    errors = []
    missing = TOP_KEYS - report.keys()
    if missing:
        errors.append(f"{path}: missing top-level keys {sorted(missing)}")
    if report.get("schema") != "dvs-bench-replay.v1":
        errors.append(f"{path}: schema is {report.get('schema')!r}")
    totals = report.get("totals", {})
    missing = TOTALS_KEYS - totals.keys()
    if missing:
        errors.append(f"{path}: totals missing {sorted(missing)}")
    cases = report.get("cases", [])
    if totals.get("cases") != len(cases):
        errors.append(
            f"{path}: totals.cases={totals.get('cases')} but {len(cases)} cases"
        )
    if not totals.get("agreement_ok", False):
        errors.append(f"{path}: totals.agreement_ok is false")
    for key, field in (("trace_insts", "trace_insts"), ("block_ops", "block_ops"),
                       ("variants", "variants")):
        summed = sum(c.get("bytecode", {}).get(field, 0) for c in cases)
        if totals.get(key) != summed:
            errors.append(
                f"{path}: totals.{key}={totals.get(key)} but cases sum to {summed}"
            )
    for case in cases:
        name = case.get("name", "<unnamed>")
        for keyset, sub in (
            (CASE_KEYS, None),
            (BYTECODE_KEYS, "bytecode"),
            (CASE_SPEEDUP_KEYS, "speedup"),
        ):
            obj = case if sub is None else case.get(sub, {})
            missing = keyset - obj.keys()
            if missing:
                where = f"{name}.{sub}" if sub else name
                errors.append(f"{path}: case {where} missing {sorted(missing)}")
        wall = case.get("wall_us", {})
        if "compile" not in wall:
            errors.append(f"{path}: case {name}.wall_us missing ['compile']")
        for side in ("sim", "replay"):
            missing = PCTL_KEYS - wall.get(side, {}).keys()
            if missing:
                errors.append(
                    f"{path}: case {name}.wall_us.{side} missing {sorted(missing)}"
                )
        if not case.get("agreement_ok", False):
            errors.append(
                f"{path}: case {name} disagreed with the simulator "
                f"(max_rel_err={case.get('max_rel_err')})"
            )
        if not case.get("max_rel_err", float("inf")) <= AGREEMENT_REL:
            errors.append(
                f"{path}: case {name} max_rel_err={case.get('max_rel_err')} "
                f"exceeds the {AGREEMENT_REL} differential tolerance"
            )
    speedup = report.get("speedup", {})
    missing = SPEEDUP_KEYS - speedup.keys()
    if missing:
        errors.append(f"{path}: speedup missing {sorted(missing)}")
    elif not speedup["median"] >= floor:
        errors.append(
            f"{path}: median batched-replay speedup {speedup['median']:.2f}x "
            f"is below the {floor}x floor"
        )
    fail(errors, f"schema validation failed for {path}")
    print(
        f"{path}: ok ({report['mode']} mode, {len(cases)} cases, "
        f"median speedup {speedup['median']:.2f}x >= {floor}x)"
    )


def diff_against_baseline(report, baseline, report_path, baseline_path):
    base_by_name = {c["name"]: c for c in baseline["cases"]}
    errors = []
    compared = 0
    for case in report["cases"]:
        base = base_by_name.get(case["name"])
        if base is None:
            errors.append(f"case {case['name']} not present in {baseline_path}")
            continue
        compared += 1
        for key in sorted(DETERMINISTIC_CASE_KEYS):
            if case.get(key) != base.get(key):
                errors.append(
                    f"case {case['name']}.{key} diverged from baseline:\n"
                    f"    {report_path}: {json.dumps(case.get(key))}\n"
                    f"    {baseline_path}: {json.dumps(base.get(key))}"
                )
    fail(errors, "baseline diff failed (the compiled bytecode or the workload "
         "grid changed — if intended, regenerate with `dvsc bench-replay`)")
    print(f"deterministic fields match baseline for all {compared} shared cases")


def main():
    argv = sys.argv[1:]
    floor = 10.0
    paths = []
    it = iter(argv)
    for arg in it:
        if arg == "--speedup-floor":
            try:
                floor = float(next(it))
            except (StopIteration, ValueError):
                print(__doc__, file=sys.stderr)
                sys.exit(2)
        else:
            paths.append(arg)
    if len(paths) not in (1, 2):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(paths[0]) as f:
        report = json.load(f)
    check_schema(report, paths[0], floor)
    if len(paths) == 2:
        with open(paths[1]) as f:
            baseline = json.load(f)
        # The committed baseline always answers for the full acceptance
        # bar, whatever floor the fresh report was granted.
        check_schema(baseline, paths[1], 10.0)
        diff_against_baseline(report, baseline, paths[0], paths[1])


if __name__ == "__main__":
    main()
