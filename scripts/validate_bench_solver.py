#!/usr/bin/env python3
"""Validate a dvsc bench-solver report, optionally against a baseline.

Usage: validate_bench_solver.py REPORT.json [BASELINE.json] [--perf-smoke]

Checks the `dvs-bench-solver.v1` schema: required top-level and per-case
keys, no failed cells, a monotone-nonincreasing incumbent trajectory per
case (objectives are in minimization form, so every new incumbent must
improve or tie the last), and — on `continuous` backend cells — that the
exact continuous-voltage optimum agrees with the branch-and-bound LP
relaxation of the same model to 1e-6 relative. Every case must carry an
accepted optimality certificate: `certificate_bytes` (a positive,
deterministic proof size) and `cert_check_us` (the independent checker's
wall time — never compared). With a BASELINE, additionally diffs the
deterministic search counters (`stats`, plus the problem shape and
`certificate_bytes`) of every case whose name appears in both reports —
wall-clock fields are never compared. With `--perf-smoke`, the strict
counter diff is replaced by two regression gates: the report's total
branch-and-bound nodes over cases shared with the baseline must not
exceed the baseline's by more than 10%, and the total certificate size
over shared cases must not grow by more than 25%. Exits nonzero on the
first class of failure, printing every instance of it.
"""

import json
import sys

TOP_KEYS = {"schema", "mode", "totals", "cases"}
TOTALS_KEYS = {"cases", "nodes", "lp_iterations", "pivots", "certificate_bytes"}
CASE_KEYS = {
    "name",
    "backend",
    "seed",
    "max_blocks",
    "blocks",
    "edges",
    "levels",
    "deadline_frac",
    "binary_vars",
    "constraints",
    "predicted_energy_uj",
    "certificate_bytes",
    "cert_check_us",
    "reps",
    "wall_us",
    "stats",
}
# Cross-backend agreement fields carried only by continuous cells.
CONTINUOUS_KEYS = {"continuous_objective", "bnb_relaxation_objective"}
WALL_KEYS = {"mean", "p50", "p90", "max"}
STATS_KEYS = {
    "nodes",
    "nodes_pruned",
    "lp_iterations",
    "pivots",
    "dual_pivots",
    "degenerate_pivots",
    "bound_flips",
    "refactorizations",
    "presolve_rows_removed",
    "presolve_bounds_tightened",
    "mip_gap",
    "incumbents",
}
# The per-case fields that must match a baseline bit-for-bit. `reps`,
# `wall_us` and `cert_check_us` are excluded by construction: repetition
# count and wall clock are the knobs a quick run is allowed to move. The
# continuous extras compare as None == None on bnb cells.
DETERMINISTIC_CASE_KEYS = (CASE_KEYS | CONTINUOUS_KEYS) - {
    "reps",
    "wall_us",
    "cert_check_us",
}
# Total certificate size over shared cells may not grow past this factor
# in --perf-smoke mode (proofs ballooning means the certifying replay's
# trees got deeper — a real cost for anyone storing or shipping them).
CERT_SIZE_GATE = 1.25


def fail(errors, label):
    if errors:
        print(f"{label}:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        sys.exit(1)


def check_schema(report, path):
    errors = []
    missing = TOP_KEYS - report.keys()
    if missing:
        errors.append(f"{path}: missing top-level keys {sorted(missing)}")
    if report.get("schema") != "dvs-bench-solver.v1":
        errors.append(f"{path}: schema is {report.get('schema')!r}")
    totals = report.get("totals", {})
    missing = TOTALS_KEYS - totals.keys()
    if missing:
        errors.append(f"{path}: totals missing {sorted(missing)}")
    cases = report.get("cases", [])
    if totals.get("cases") != len(cases):
        errors.append(
            f"{path}: totals.cases={totals.get('cases')} but {len(cases)} cases"
        )
    for case in cases:
        name = case.get("name", "<unnamed>")
        if "error" in case:
            errors.append(f"{path}: case {name} failed: {case['error']}")
            continue
        for keyset, sub in ((CASE_KEYS, None), (WALL_KEYS, "wall_us"), (STATS_KEYS, "stats")):
            obj = case if sub is None else case.get(sub, {})
            missing = keyset - obj.keys()
            if missing:
                where = f"{name}.{sub}" if sub else name
                errors.append(f"{path}: case {where} missing {sorted(missing)}")
        objectives = [i.get("objective") for i in case.get("stats", {}).get("incumbents", [])]
        if not objectives:
            errors.append(f"{path}: case {name} has no incumbents")
        if any(b > a for a, b in zip(objectives, objectives[1:])):
            errors.append(
                f"{path}: case {name} incumbent trajectory not monotone "
                f"nonincreasing: {objectives}"
            )
        if case.get("backend") == "continuous":
            missing = CONTINUOUS_KEYS - case.keys()
            if missing:
                errors.append(f"{path}: case {name} missing {sorted(missing)}")
            else:
                exact = case["continuous_objective"]
                lp = case["bnb_relaxation_objective"]
                if abs(exact - lp) > 1e-6 * max(1.0, abs(exact)):
                    errors.append(
                        f"{path}: case {name}: continuous backend and B&B LP "
                        f"disagree on the relaxation: yds={exact} lp={lp}"
                    )
    fail(errors, f"schema validation failed for {path}")
    print(f"{path}: ok ({report['mode']} mode, {len(cases)} cases)")


def diff_against_baseline(report, baseline, report_path, baseline_path):
    base_by_name = {c["name"]: c for c in baseline["cases"]}
    errors = []
    compared = 0
    for case in report["cases"]:
        base = base_by_name.get(case["name"])
        if base is None:
            errors.append(f"case {case['name']} not present in {baseline_path}")
            continue
        compared += 1
        for key in sorted(DETERMINISTIC_CASE_KEYS):
            if case.get(key) != base.get(key):
                errors.append(
                    f"case {case['name']}.{key} diverged from baseline:\n"
                    f"    {report_path}: {json.dumps(case.get(key))}\n"
                    f"    {baseline_path}: {json.dumps(base.get(key))}"
                )
    fail(errors, "baseline counter diff failed (solver search changed — "
         "if intended, regenerate with `dvsc bench-solver`)")
    print(f"counters match baseline for all {compared} shared cases")


def perf_smoke(report, baseline, report_path, baseline_path):
    """Regression gates: over the branch-and-bound cells shared with the
    baseline, total nodes explored may not grow by more than 10%, and over
    all shared cells total certificate size may not grow past
    CERT_SIZE_GATE. Unlike the strict counter diff, this tolerates
    intentional search changes — it only catches the solver getting
    meaningfully slower or its proofs meaningfully fatter."""
    base_by_name = {c["name"]: c for c in baseline["cases"]}
    report_nodes = 0
    baseline_nodes = 0
    report_cert = 0
    baseline_cert = 0
    compared = 0
    cert_compared = 0
    errors = []
    for case in report["cases"]:
        base = base_by_name.get(case["name"])
        if base is None:
            continue
        cert_compared += 1
        report_cert += case["certificate_bytes"]
        baseline_cert += base["certificate_bytes"]
        if case.get("backend") == "continuous":
            continue
        compared += 1
        report_nodes += case["stats"]["nodes"]
        baseline_nodes += base["stats"]["nodes"]
    if compared == 0:
        errors.append(f"no branch-and-bound cases shared with {baseline_path}")
    elif report_nodes > 1.10 * baseline_nodes:
        errors.append(
            f"nodes explored regressed >10%: {report_path} explores "
            f"{report_nodes} over {compared} shared B&B cases vs "
            f"{baseline_nodes} in {baseline_path}"
        )
    if cert_compared and report_cert > CERT_SIZE_GATE * baseline_cert:
        errors.append(
            f"certificate size grew past {CERT_SIZE_GATE}x baseline: "
            f"{report_path} totals {report_cert} bytes over {cert_compared} "
            f"shared cases vs {baseline_cert} in {baseline_path}"
        )
    fail(errors, "perf smoke failed")
    print(
        f"perf smoke ok: {report_nodes} nodes vs baseline {baseline_nodes} "
        f"over {compared} shared B&B cases; {report_cert} certificate bytes "
        f"vs baseline {baseline_cert} over {cert_compared} shared cases"
    )


def main():
    argv = sys.argv[1:]
    smoke = "--perf-smoke" in argv
    paths = [a for a in argv if a != "--perf-smoke"]
    if len(paths) not in (1, 2) or (smoke and len(paths) != 2):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(paths[0]) as f:
        report = json.load(f)
    check_schema(report, paths[0])
    if len(paths) == 2:
        with open(paths[1]) as f:
            baseline = json.load(f)
        check_schema(baseline, paths[1])
        if smoke:
            perf_smoke(report, baseline, paths[0], paths[1])
        else:
            diff_against_baseline(report, baseline, paths[0], paths[1])


if __name__ == "__main__":
    main()
