//! `dvsc bench-replay` — a pinned bytecode-replay speedup baseline.
//!
//! Runs a fixed grid of generated programs — CFG sizes × ladder shapes,
//! seeded through the `dvs-check` generators so every case is
//! reproducible from its cell description — and scores the `dvs-replay`
//! bytecode interpreter against the cycle-level simulator on the same
//! batch of schedules. The rendered result is the `BENCH_replay.json`
//! document kept at the repo root.
//!
//! Each cell evaluates the *many schedules, one trace* workload the
//! bytecode runtime is built for: `schedules` candidate schedules
//! (uniform per-mode baselines plus seeded random edge assignments) are
//! scored once by `Machine::run_scheduled` and once by
//! [`dvs_replay::ReplayBytecode::replay_batch`] over bytecode compiled
//! once per cell. Three kinds of numbers live in the report:
//!
//! * **Workload shape** (blocks, edges, trace instructions, variant and
//!   block-op counts) is *deterministic* — CI diffs it against the
//!   committed baseline via [`deterministic_view`].
//! * **Agreement** (`agreement_ok`, `max_rel_err`) pins the 1e-6
//!   bytecode-vs-simulator contract on every cell; also deterministic.
//! * **Wall clock and speedup** (`wall_us`, `speedup`) are measured over
//!   `reps` paired repetitions and are machine-dependent;
//!   [`deterministic_view`] strips them, and the validator gates on the
//!   median speedup separately.

use dvs_check::{gen_cfg, gen_trace, Gen};
use dvs_obs::json::Json;
use dvs_replay::ReplayBytecode;
use dvs_runtime::Pool;
use dvs_sim::{EdgeSchedule, Machine, ScheduledRun};
use dvs_vf::{AlphaPower, ModeId, TransitionModel, VoltageLadder};
use std::time::Instant;

/// Configuration for [`run_bench_replay`].
#[derive(Debug, Clone)]
pub struct BenchReplayConfig {
    /// Trim the grid and the repetition count for CI smoke runs.
    pub quick: bool,
    /// Worker threads fanning out over grid *cells*. Timing inside each
    /// cell is sequential and paired (sim and replay measured on the same
    /// worker), so this only affects total wall clock, never the ratio.
    pub jobs: usize,
}

impl Default for BenchReplayConfig {
    fn default() -> Self {
        BenchReplayConfig {
            quick: false,
            jobs: 1,
        }
    }
}

/// One cell of the benchmark grid.
#[derive(Debug, Clone)]
struct Cell {
    seed: u64,
    max_blocks: usize,
    levels: usize,
    schedules: usize,
    reps: usize,
}

impl Cell {
    fn name(&self) -> String {
        format!(
            "blocks{}_levels{}_sched{}",
            self.max_blocks, self.levels, self.schedules
        )
    }
}

/// The fixed grid. Seeds are a pure function of the cell coordinates so
/// the generated program for a cell never silently changes when the grid
/// gains or loses entries.
fn grid(quick: bool) -> Vec<Cell> {
    // The quick grid is a strict subset of the full grid (same seeds, same
    // coordinates), so a quick CI run can diff its deterministic fields
    // cell-by-cell against the committed full baseline.
    let (sizes, levels, reps): (&[usize], &[usize], usize) = if quick {
        (&[10, 28], &[3], 3)
    } else {
        (&[10, 18, 28], &[2, 3, 5], 5)
    };
    let mut cells = Vec::new();
    for &max_blocks in sizes {
        for &lv in levels {
            cells.push(Cell {
                seed: 0xb17e + 31 * max_blocks as u64 + 7 * lv as u64,
                max_blocks,
                levels: lv,
                schedules: 64,
                reps,
            });
        }
    }
    cells
}

fn ladder(levels: usize) -> VoltageLadder {
    let law = AlphaPower::paper();
    if levels == 3 {
        VoltageLadder::xscale3(&law)
    } else {
        VoltageLadder::interpolated(&law, levels).unwrap_or_else(|_| VoltageLadder::xscale3(&law))
    }
}

#[allow(clippy::cast_precision_loss)]
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = (((sorted.len() - 1) as f64) * q).round() as usize;
    sorted[idx]
}

fn wall_stats(walls: &mut [f64]) -> Json {
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    #[allow(clippy::cast_precision_loss)]
    Json::obj([
        (
            "mean",
            Json::from(walls.iter().sum::<f64>() / walls.len() as f64),
        ),
        ("p50", Json::from(percentile(walls, 0.50))),
        ("p90", Json::from(percentile(walls, 0.90))),
        ("max", Json::from(*walls.last().expect("reps >= 1"))),
    ])
}

/// The candidate-schedule batch for a cell: one uniform baseline per mode
/// followed by seeded random edge assignments, `cell.schedules` in total.
fn gen_schedules(g: &mut Gen, cfg: &dvs_ir::Cfg, levels: usize, count: usize) -> Vec<EdgeSchedule> {
    let mut out = Vec::with_capacity(count);
    for m in 0..levels.min(count) {
        out.push(EdgeSchedule::uniform(cfg, ModeId(m)));
    }
    while out.len() < count {
        let initial = ModeId(g.below(levels as u64) as usize);
        let edge_modes = (0..cfg.num_edges())
            .map(|_| ModeId(g.below(levels as u64) as usize))
            .collect();
        out.push(EdgeSchedule {
            initial,
            edge_modes,
        });
    }
    out
}

fn rel_err(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs().max(1e-9)
}

fn max_rel_err(got: &ScheduledRun, want: &ScheduledRun) -> f64 {
    [
        rel_err(got.time_us, want.time_us),
        rel_err(got.processor_energy_uj, want.processor_energy_uj),
        rel_err(got.dram_energy_uj, want.dram_energy_uj),
        rel_err(got.transition_energy_uj, want.transition_energy_uj),
        rel_err(got.transition_time_us, want.transition_time_us),
        if got.transitions == want.transitions {
            0.0
        } else {
            f64::INFINITY
        },
    ]
    .into_iter()
    .fold(0.0, f64::max)
}

/// Runs one cell: generate → compile once → `reps` paired timings of the
/// simulator and the batched bytecode interpreter over the same schedule
/// batch, plus a full 1e-6 agreement sweep on the first repetition.
fn run_cell(cell: &Cell) -> Json {
    let mut g = Gen::from_seed(cell.seed);
    let cfg = gen_cfg(&mut g, cell.max_blocks);
    let trace = gen_trace(&mut g, &cfg);
    let ladder = ladder(cell.levels);
    let transition = TransitionModel::with_capacitance_uf(0.05);
    let machine = Machine::paper_default();
    let schedules = gen_schedules(&mut g, &cfg, ladder.len(), cell.schedules);

    let compile_start = Instant::now();
    let code: ReplayBytecode = dvs_replay::compile(&machine, &cfg, &trace, &ladder, &transition);
    let compile_us = compile_start.elapsed().as_secs_f64() * 1e6;
    let stats = code.stats();

    let mut sim_walls = Vec::with_capacity(cell.reps);
    let mut replay_walls = Vec::with_capacity(cell.reps);
    let mut speedups = Vec::with_capacity(cell.reps);
    let mut agreement_ok = true;
    let mut worst_err = 0.0f64;
    for rep in 0..cell.reps {
        let t0 = Instant::now();
        let sim_runs: Vec<ScheduledRun> = schedules
            .iter()
            .map(|s| machine.run_scheduled(&cfg, &trace, &ladder, s, &transition))
            .collect();
        let sim_us = t0.elapsed().as_secs_f64() * 1e6;

        let t1 = Instant::now();
        let replay_runs = code.replay_batch(&schedules);
        let replay_us = t1.elapsed().as_secs_f64() * 1e6;

        if rep == 0 {
            for (got, want) in replay_runs.iter().zip(&sim_runs) {
                let err = max_rel_err(got, want);
                worst_err = worst_err.max(err);
                if err > 1e-6 {
                    agreement_ok = false;
                }
            }
        }
        sim_walls.push(sim_us);
        replay_walls.push(replay_us);
        speedups.push(sim_us / replay_us.max(1e-9));
    }
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));

    Json::obj([
        ("name", Json::from(cell.name())),
        ("seed", Json::from(cell.seed)),
        ("max_blocks", Json::from(cell.max_blocks)),
        ("blocks", Json::from(cfg.num_blocks())),
        ("edges", Json::from(cfg.num_edges())),
        ("levels", Json::from(cell.levels)),
        ("schedules", Json::from(cell.schedules)),
        ("reps", Json::from(cell.reps)),
        (
            "bytecode",
            Json::obj([
                ("trace_blocks", Json::from(stats.trace_blocks)),
                ("trace_insts", Json::from(stats.trace_insts)),
                ("block_ops", Json::from(stats.block_ops)),
                ("variants", Json::from(stats.variants)),
                ("variant_insts", Json::from(stats.variant_insts)),
            ]),
        ),
        ("agreement_ok", Json::from(agreement_ok)),
        (
            "max_rel_err",
            Json::from(if worst_err.is_finite() {
                worst_err
            } else {
                -1.0
            }),
        ),
        (
            "wall_us",
            Json::obj([
                ("compile", Json::from(compile_us)),
                ("sim", wall_stats(&mut sim_walls)),
                ("replay", wall_stats(&mut replay_walls)),
            ]),
        ),
        (
            "speedup",
            Json::obj([
                ("p50", Json::from(percentile(&speedups, 0.50))),
                ("min", Json::from(speedups[0])),
                ("max", Json::from(*speedups.last().expect("reps >= 1"))),
            ]),
        ),
    ])
}

/// Runs the whole grid (cells fanned out over `config.jobs` workers, in
/// deterministic order) and returns the `BENCH_replay.json` document.
#[must_use]
pub fn run_bench_replay(config: &BenchReplayConfig) -> Json {
    let cells = grid(config.quick);
    let pool = Pool::new(config.jobs.max(1));
    let cases: Vec<Json> = pool.map(cells, |_, cell| run_cell(&cell));

    let total = |key: &str| {
        cases
            .iter()
            .filter_map(|c| {
                c.get("bytecode")
                    .and_then(|s| s.get(key))
                    .and_then(Json::as_u64)
            })
            .sum::<u64>()
    };
    let mut cell_speedups: Vec<f64> = cases
        .iter()
        .filter_map(|c| {
            c.get("speedup")
                .and_then(|s| s.get("p50"))
                .and_then(Json::as_f64)
        })
        .collect();
    cell_speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    let all_agree = cases
        .iter()
        .all(|c| c.get("agreement_ok").and_then(Json::as_bool) == Some(true));

    Json::obj([
        ("schema", Json::from("dvs-bench-replay.v1")),
        (
            "mode",
            Json::from(if config.quick { "quick" } else { "full" }),
        ),
        (
            "totals",
            Json::obj([
                ("cases", Json::from(cases.len())),
                ("trace_insts", Json::from(total("trace_insts"))),
                ("block_ops", Json::from(total("block_ops"))),
                ("variants", Json::from(total("variants"))),
                ("agreement_ok", Json::from(all_agree)),
            ]),
        ),
        (
            "speedup",
            Json::obj([
                ("median", Json::from(percentile(&cell_speedups, 0.50))),
                ("min", Json::from(percentile(&cell_speedups, 0.0))),
                ("max", Json::from(percentile(&cell_speedups, 1.0))),
            ]),
        ),
        ("cases", Json::Arr(cases)),
    ])
}

/// The report with every machine-dependent field (`wall_us` and `speedup`
/// subtrees) removed — what must be byte-stable across `--jobs` values
/// and CI runs on the same toolchain.
#[must_use]
pub fn deterministic_view(v: &Json) -> Json {
    match v {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "wall_us" && k != "speedup")
                .map(|(k, val)| (k.clone(), deterministic_view(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(deterministic_view).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_is_a_subset_of_the_full_grid() {
        let full: Vec<String> = grid(false).iter().map(Cell::name).collect();
        assert_eq!(grid(true).len(), 2);
        assert_eq!(full.len(), 9);
        for c in grid(true) {
            assert!(
                full.contains(&c.name()),
                "{} missing from full grid",
                c.name()
            );
        }
    }

    #[test]
    fn schedule_batch_covers_uniform_baselines_then_random_candidates() {
        let mut g = Gen::from_seed(9);
        let cfg = gen_cfg(&mut g, 8);
        let batch = gen_schedules(&mut g, &cfg, 3, 10);
        assert_eq!(batch.len(), 10);
        for (m, s) in batch.iter().take(3).enumerate() {
            assert_eq!(s, &EdgeSchedule::uniform(&cfg, ModeId(m)));
        }
        for s in &batch {
            assert_eq!(s.edge_modes.len(), cfg.num_edges());
        }
    }

    #[test]
    fn a_small_cell_agrees_with_the_simulator_and_strips_cleanly() {
        let cell = Cell {
            seed: 0xb17e + 31 * 10 + 7 * 3,
            max_blocks: 10,
            levels: 3,
            schedules: 6,
            reps: 1,
        };
        let case = run_cell(&cell);
        assert_eq!(case.get("agreement_ok").and_then(Json::as_bool), Some(true));
        let v = deterministic_view(&case);
        assert!(v.get("wall_us").is_none());
        assert!(v.get("speedup").is_none());
        assert!(v.get("bytecode").is_some());
    }

    #[test]
    fn deterministic_view_is_stable_across_jobs() {
        let a = run_bench_replay(&BenchReplayConfig {
            quick: true,
            jobs: 1,
        });
        let b = run_bench_replay(&BenchReplayConfig {
            quick: true,
            jobs: 4,
        });
        assert_eq!(deterministic_view(&a).dump(), deterministic_view(&b).dump());
    }
}
