//! `dvsc bench-solver` — a pinned MILP solver performance baseline.
//!
//! Runs a fixed grid of generated solver cases — CFG sizes × ladder
//! shapes × deadline tightnesses × solver backends, seeded through the
//! `dvs-check` generators so every case is reproducible from its cell
//! description — and renders the result as the `BENCH_solver.json`
//! document kept at the repo root.
//!
//! Every coordinate runs twice: a `bnb` cell (branch-and-bound on the
//! full transition-cost formulation — these keep the historical cell
//! names) and a `_continuous` sibling (the exact continuous-voltage
//! backend on the transition-free formulation). Continuous cells also
//! record `continuous_objective` next to `bnb_relaxation_objective` so
//! the validator can assert the two backends agree on continuous-ladder
//! relaxations to 1e-6.
//!
//! Two kinds of numbers live side by side in the report and are treated
//! very differently:
//!
//! * **Search-work counters** ([`dvs_milp::SolveStats`]: nodes, pruned
//!   nodes, simplex pivots, presolve reductions, the incumbent
//!   trajectory, the final MIP gap) are *deterministic*: every cell pins
//!   `solver_jobs` to 1, so the same toolchain produces the same values
//!   whatever `--jobs` fans the cells out over. CI diffs these against
//!   the committed baseline; a change means the solver's search actually
//!   changed.
//! * **Wall-clock percentiles** (`wall_us`) are measured over `reps`
//!   repeated solves and are machine-dependent noise as far as the
//!   baseline is concerned. [`deterministic_view`] strips them, and the
//!   determinism test compares only what survives.
//!
//! Every cell additionally runs one *certifying* solve: `certificate_bytes`
//! records the size of the canonical `dvs-cert.v1` proof (deterministic,
//! diffed against the baseline with a size-regression gate in
//! `scripts/validate_bench_solver.py`) and `cert_check_us` the independent
//! checker's wall time (noise, stripped like `wall_us`). A cell whose
//! certificate the checker rejects renders as an error cell, which the
//! validator refuses.

use dvs_check::{gen_cfg, gen_trace, DeadlineSpec, Gen};
use dvs_compiler::{MilpFormulation, SolverChoice};
use dvs_obs::json::Json;
use dvs_runtime::Pool;
use dvs_sim::{Machine, ModeProfiler};
use dvs_vf::{AlphaPower, TransitionModel, VoltageLadder};

/// Configuration for [`run_bench_solver`].
#[derive(Debug, Clone)]
pub struct BenchSolverConfig {
    /// Trim the grid and the repetition count for CI smoke runs.
    pub quick: bool,
    /// Worker threads fanning out over grid *cells*. The solver inside
    /// each cell always runs sequentially (`solver_jobs = 1`), so this
    /// only affects wall clock, never the counters.
    pub jobs: usize,
}

impl Default for BenchSolverConfig {
    fn default() -> Self {
        BenchSolverConfig {
            quick: false,
            jobs: 1,
        }
    }
}

/// One cell of the benchmark grid.
#[derive(Debug, Clone)]
struct Cell {
    seed: u64,
    max_blocks: usize,
    levels: usize,
    deadline_frac: f64,
    reps: usize,
    backend: SolverChoice,
}

impl Cell {
    fn name(&self) -> String {
        let base = format!(
            "blocks{}_levels{}_frac{:02}",
            self.max_blocks,
            self.levels,
            (self.deadline_frac * 100.0).round() as u64
        );
        match self.backend {
            SolverChoice::Continuous => format!("{base}_continuous"),
            _ => base,
        }
    }
}

/// The fixed grid. Seeds are a pure function of the cell coordinates so
/// the generated CFG for a cell never silently changes when the grid
/// gains or loses entries.
fn grid(quick: bool) -> Vec<Cell> {
    // The quick grid is a strict subset of the full grid (same seeds, same
    // coordinates), so a quick CI run can diff its counters cell-by-cell
    // against the committed full baseline.
    let (sizes, levels, fracs, reps): (&[usize], &[usize], &[f64], usize) = if quick {
        (&[10, 18], &[2, 4], &[0.15, 0.9], 3)
    } else {
        (&[10, 18, 28], &[2, 3, 4], &[0.15, 0.4, 0.9], 5)
    };
    let mut cells = Vec::new();
    for &max_blocks in sizes {
        for &lv in levels {
            for &frac in fracs {
                // Each coordinate appears twice: once for the
                // branch-and-bound backend on the full transition-cost
                // formulation (these keep the historical cell names, so
                // they diff against older baselines), and once for the
                // exact continuous-voltage backend on the transition-free
                // formulation it can solve in closed form.
                for backend in [SolverChoice::BranchAndBound, SolverChoice::Continuous] {
                    cells.push(Cell {
                        seed: 0x5eed + 31 * max_blocks as u64 + 7 * lv as u64,
                        max_blocks,
                        levels: lv,
                        deadline_frac: frac,
                        reps,
                        backend,
                    });
                }
            }
        }
    }
    cells
}

fn ladder(levels: usize) -> VoltageLadder {
    let law = AlphaPower::paper();
    if levels == 3 {
        VoltageLadder::xscale3(&law)
    } else {
        VoltageLadder::interpolated(&law, levels).unwrap_or_else(|_| VoltageLadder::xscale3(&law))
    }
}

#[allow(clippy::cast_precision_loss)]
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = (((sorted.len() - 1) as f64) * q).round() as usize;
    sorted[idx]
}

/// Runs one cell: generate → profile → solve `reps` times. Counters come
/// from the first repetition (they are identical across repetitions —
/// the solver is deterministic at `solver_jobs = 1`); wall clock is
/// aggregated over all of them.
#[allow(clippy::cast_precision_loss)]
fn run_cell(cell: &Cell) -> Json {
    let mut g = Gen::from_seed(cell.seed);
    let cfg = gen_cfg(&mut g, cell.max_blocks);
    let trace = gen_trace(&mut g, &cfg);
    let ladder = ladder(cell.levels);
    // Continuous cells drop regulator transition costs: the exact
    // continuous-voltage backend is defined on pure voltage-ladder models,
    // and the transition-free formulation is exactly that shape.
    let transition = match cell.backend {
        SolverChoice::Continuous => TransitionModel::free(),
        _ => TransitionModel::with_capacitance_uf(0.05),
    };
    let profiler = ModeProfiler::new(Machine::paper_default());
    let (profile, _) = profiler.profile(&cfg, &trace, &ladder);
    let t_fast = profile.total_time_at(ladder.len() - 1);
    let t_slow = profile.total_time_at(0);
    let deadline_us = DeadlineSpec::SpanFraction(cell.deadline_frac).resolve(t_fast, t_slow);
    let formulation = MilpFormulation::new(&cfg, &profile, &ladder, &transition, deadline_us)
        .with_solver(cell.backend);

    let mut walls = Vec::with_capacity(cell.reps);
    let mut first = None;
    for _ in 0..cell.reps {
        match formulation.solve() {
            Ok(out) => {
                walls.push(out.solve_time.as_secs_f64() * 1e6);
                if first.is_none() {
                    first = Some(out);
                }
            }
            Err(e) => {
                return Json::obj([
                    ("name", Json::from(cell.name())),
                    ("seed", Json::from(cell.seed)),
                    ("error", Json::from(format!("{e}"))),
                ]);
            }
        }
    }
    let out = first.expect("reps >= 1");
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));

    // Continuous cells carry a cross-check pair: the exact closed-form
    // continuous optimum next to the branch-and-bound LP relaxation of the
    // same model. The baseline validator asserts they agree to 1e-6 —
    // this is the machine-checked form of the "ContinuousYds matches B&B
    // on continuous ladders" contract.
    let extras: Vec<(String, Json)> = if cell.backend == SolverChoice::Continuous {
        let exact = formulation.relaxation_bound_via(SolverChoice::Continuous);
        let lp = formulation.relaxation_bound_via(SolverChoice::BranchAndBound);
        match (exact, lp) {
            (Ok(exact), Ok(lp)) => vec![
                ("continuous_objective".to_string(), Json::from(exact)),
                ("bnb_relaxation_objective".to_string(), Json::from(lp)),
            ],
            (Err(e), _) | (_, Err(e)) => {
                return Json::obj([
                    ("name", Json::from(cell.name())),
                    ("seed", Json::from(cell.seed)),
                    ("error", Json::from(format!("{e}"))),
                ]);
            }
        }
    } else {
        Vec::new()
    };

    // Every cell must certify: one certifying solve feeds the certificate
    // columns. The encoded size is deterministic (the proof depends only
    // on the model and the answer, never on thread count or wall clock)
    // and is diffed against the committed baseline; the independent
    // checker's wall time is noise and is stripped by
    // [`deterministic_view`]. A rejected or missing certificate is an
    // error cell — the baseline validator refuses it.
    let formulation = formulation.with_certify(true);
    let (certificate_bytes, cert_check_us) = match formulation.solve() {
        Ok(certified) => match certified.certificate {
            Some(c) if c.report.ok() => (c.encoded.len(), c.check_us),
            Some(c) => {
                let r = c.report.reject.expect("not ok implies reject");
                return Json::obj([
                    ("name", Json::from(cell.name())),
                    ("seed", Json::from(cell.seed)),
                    (
                        "error",
                        Json::from(format!("certificate rejected: {}: {}", r.code, r.detail)),
                    ),
                ]);
            }
            None => {
                return Json::obj([
                    ("name", Json::from(cell.name())),
                    ("seed", Json::from(cell.seed)),
                    ("error", Json::from("certification produced no certificate")),
                ]);
            }
        },
        Err(e) => {
            return Json::obj([
                ("name", Json::from(cell.name())),
                ("seed", Json::from(cell.seed)),
                ("error", Json::from(format!("certifying solve failed: {e}"))),
            ]);
        }
    };

    let s = &out.solve_stats;
    let mut case = Json::obj([
        ("name", Json::from(cell.name())),
        ("backend", Json::from(cell.backend.as_str())),
        ("seed", Json::from(cell.seed)),
        ("max_blocks", Json::from(cell.max_blocks)),
        ("blocks", Json::from(cfg.num_blocks())),
        ("edges", Json::from(cfg.num_edges())),
        ("levels", Json::from(cell.levels)),
        ("deadline_frac", Json::from(cell.deadline_frac)),
        ("binary_vars", Json::from(out.binary_vars)),
        ("constraints", Json::from(out.constraints)),
        ("predicted_energy_uj", Json::from(out.predicted_energy_uj)),
        ("certificate_bytes", Json::from(certificate_bytes)),
        ("cert_check_us", Json::from(cert_check_us)),
        ("reps", Json::from(cell.reps)),
        (
            "wall_us",
            Json::obj([
                (
                    "mean",
                    Json::from(walls.iter().sum::<f64>() / walls.len() as f64),
                ),
                ("p50", Json::from(percentile(&walls, 0.50))),
                ("p90", Json::from(percentile(&walls, 0.90))),
                ("max", Json::from(*walls.last().expect("reps >= 1"))),
            ]),
        ),
        (
            "stats",
            Json::obj([
                ("nodes", Json::from(s.nodes)),
                ("nodes_pruned", Json::from(s.nodes_pruned)),
                ("lp_iterations", Json::from(s.lp_iterations)),
                ("pivots", Json::from(s.pivots)),
                ("dual_pivots", Json::from(s.dual_pivots)),
                ("degenerate_pivots", Json::from(s.degenerate_pivots)),
                ("bound_flips", Json::from(s.bound_flips)),
                ("refactorizations", Json::from(s.refactorizations)),
                ("presolve_rows_removed", Json::from(s.presolve_rows_removed)),
                (
                    "presolve_bounds_tightened",
                    Json::from(s.presolve_bounds_tightened),
                ),
                (
                    "mip_gap",
                    Json::from(if s.mip_gap.is_finite() {
                        s.mip_gap
                    } else {
                        -1.0
                    }),
                ),
                (
                    "incumbents",
                    Json::Arr(
                        s.incumbents
                            .iter()
                            .map(|i| {
                                Json::obj([
                                    ("node", Json::from(i.node)),
                                    ("objective", Json::from(i.objective)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]);
    if let Json::Obj(members) = &mut case {
        members.extend(extras);
    }
    case
}

/// Runs the whole grid (cells fanned out over `config.jobs` workers, in
/// deterministic order) and returns the `BENCH_solver.json` document.
#[must_use]
pub fn run_bench_solver(config: &BenchSolverConfig) -> Json {
    let cells = grid(config.quick);
    let pool = Pool::new(config.jobs.max(1));
    let cases: Vec<Json> = pool.map(cells, |_, cell| run_cell(&cell));

    let total = |key: &str| {
        cases
            .iter()
            .filter_map(|c| {
                c.get("stats")
                    .and_then(|s| s.get(key))
                    .and_then(Json::as_u64)
            })
            .sum::<u64>()
    };
    Json::obj([
        ("schema", Json::from("dvs-bench-solver.v1")),
        (
            "mode",
            Json::from(if config.quick { "quick" } else { "full" }),
        ),
        (
            "totals",
            Json::obj([
                ("cases", Json::from(cases.len())),
                ("nodes", Json::from(total("nodes"))),
                ("lp_iterations", Json::from(total("lp_iterations"))),
                ("pivots", Json::from(total("pivots"))),
                (
                    "certificate_bytes",
                    Json::from(
                        cases
                            .iter()
                            .filter_map(|c| c.get("certificate_bytes").and_then(Json::as_u64))
                            .sum::<u64>(),
                    ),
                ),
            ]),
        ),
        ("cases", Json::Arr(cases)),
    ])
}

/// The report with every machine-dependent field (`wall_us` subtrees and
/// the `cert_check_us` checker timings) removed — what must be
/// byte-stable across `--jobs` values and CI runs on the same toolchain.
#[must_use]
pub fn deterministic_view(v: &Json) -> Json {
    match v {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "wall_us" && k != "cert_check_us")
                .map(|(k, val)| (k.clone(), deterministic_view(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(deterministic_view).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_is_small_and_full_grid_is_larger() {
        assert_eq!(grid(true).len(), 16);
        assert_eq!(grid(false).len(), 54);
    }

    #[test]
    fn every_bnb_cell_has_a_continuous_sibling_with_the_same_seed() {
        for cells in [grid(true), grid(false)] {
            let bnb: Vec<_> = cells
                .iter()
                .filter(|c| c.backend == SolverChoice::BranchAndBound)
                .collect();
            assert_eq!(bnb.len() * 2, cells.len());
            for b in bnb {
                let sibling = cells
                    .iter()
                    .find(|c| c.name() == format!("{}_continuous", b.name()))
                    .expect("continuous sibling exists");
                assert_eq!(sibling.seed, b.seed);
                assert_eq!(sibling.deadline_frac, b.deadline_frac);
            }
        }
    }

    #[test]
    fn quick_grid_is_a_subset_of_the_full_grid() {
        let full: Vec<String> = grid(false).iter().map(Cell::name).collect();
        for c in grid(true) {
            assert!(
                full.contains(&c.name()),
                "{} missing from full grid",
                c.name()
            );
        }
    }

    #[test]
    fn deterministic_view_strips_wall_clock_only() {
        let j = Json::obj([
            ("stats", Json::obj([("nodes", Json::from(3usize))])),
            ("certificate_bytes", Json::from(1234usize)),
            ("cert_check_us", Json::from(56.7)),
            ("wall_us", Json::obj([("p50", Json::from(1.5))])),
        ]);
        let v = deterministic_view(&j);
        assert!(v.get("wall_us").is_none());
        assert!(v.get("cert_check_us").is_none());
        assert_eq!(
            v.get("certificate_bytes").and_then(Json::as_u64),
            Some(1234)
        );
        assert_eq!(
            v.get("stats")
                .and_then(|s| s.get("nodes"))
                .and_then(Json::as_u64),
            Some(3)
        );
    }
}
