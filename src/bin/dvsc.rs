//! `dvsc` — command-line front end for the compile-time DVS pass.
//!
//! ```text
//! dvsc list
//! dvsc compile --benchmark gsm --deadline 3 [--levels 3] [--capacitance 0.05]
//!              [--solver auto|bnb|continuous] [--certify] [--emit listing.s]
//!              [--no-validate] [--metrics] [--trace-out trace.json] [--jobs N]
//! dvsc analyze --benchmark epic [--levels 7]
//! dvsc check [--seeds N] [--seed-base S] [--max-blocks K] [--jobs J]
//!            [--repro-out FILE]
//! dvsc verify [--benchmark gsm] [--deadline 1..5] [--deny] [--json]
//!             [--dot out.dot] [--mutate SEED] [--levels N]
//!             [--capacitance µF] [--jobs N]
//! dvsc serve [--addr HOST:PORT] [--jobs N] [--cache-bytes B]
//!            [--queue-depth D]
//! dvsc client <compile|verify|evaluate|certify|ping|stats|traces|shutdown>
//!             [--addr HOST:PORT] [--benchmark NAME] [--deadline 1..5]
//!             [--solver NAME] [--json]
//! dvsc client trace <compile|verify|evaluate|certify> --benchmark NAME
//!             [--deadline 1..5]
//! dvsc loadtest [--addr HOST:PORT] [--clients N] [--requests M]
//!               [--benchmark NAME]
//! dvsc bench-solver [--quick] [--jobs N] [--out FILE]
//! dvsc bench-replay [--quick] [--jobs N] [--out FILE]
//! ```
//!
//! `compile` runs profile → filter → MILP → schedule on a built-in
//! workload, re-simulates the schedule and prints predicted vs measured
//! numbers. `--solver` picks the MILP backend: `auto` (the default)
//! dispatches by model shape, `bnb` forces branch-and-bound, and
//! `continuous` forces the exact continuous-voltage algorithm (which
//! rounds integer models to a feasible schedule and reports the
//! continuous optimum as the bound). `--certify` exports the solver's
//! optimality proof as a `dvs-cert` certificate and replays it through
//! the independent exact-arithmetic checker, failing the compile (exit 1)
//! if the checker rejects it. `analyze` prints the §3 analytical parameters and the
//! savings bound per deadline. `check` fuzzes the whole pipeline with
//! seeded random programs and cross-checks the MILP against brute-force
//! enumeration, analytical lower bounds and simulator replay, shrinking
//! any failure to a minimal counterexample (exit 1 on disagreement;
//! `--repro-out` saves the repro command lines). `verify` compiles each
//! benchmark (all of them by default, fanned out over a worker pool) and
//! runs the `dvs-verify` static pass over the emitted schedule: mode
//! confluence, WCET deadline bound and the V001–V009 lints. `--deny`
//! exits 1 if any error-severity diagnostic fires, `--json` switches to
//! machine-readable output, `--dot` writes a mode-colored CFG overlay,
//! and `--mutate SEED` deliberately corrupts one hot mode-set first (for
//! testing that the verifier catches it). Invoking `dvsc` with flags but
//! no subcommand implies `compile`.
//!
//! `serve` runs the compilation-as-a-service daemon (content-addressed
//! solve cache, request coalescing, bounded admission queue); `client`
//! sends one request to a running daemon (`evaluate` compiles with
//! validation off and scores the emitted schedule through the
//! `dvs-replay` bytecode fast path, sharing compiled bytecode across
//! requests that differ only in deadline or solver); `loadtest` hammers a daemon
//! from N concurrent connections and writes throughput/latency
//! percentiles (plus trace-derived queue-wait and cache-lookup means)
//! to `results/serve.csv`. `client trace <op>` runs one solve and
//! prints the server's per-request trace tree (queue wait, cache
//! lookup, solve, emit spans); `client traces` fetches the daemon's
//! recent trace ring as Chrome trace events. The global `--timeout
//! <secs>` flag bounds `compile`/`verify`/`check` wall-clock (exit code
//! 3 on expiry) and doubles as the server-side request deadline for
//! `client` and `loadtest`.
//!
//! `bench-solver` runs the pinned MILP benchmark grid (CFG sizes ×
//! ladder shapes × deadline tightnesses × solver backends) and writes
//! `BENCH_solver.json`:
//! wall-clock percentiles per cell plus the deterministic solver search
//! counters CI diffs against the committed baseline. `bench-replay` does
//! the same for the `dvs-replay` bytecode interpreter: each cell scores a
//! batch of schedules on the cycle-level simulator and on compiled
//! bytecode, checks 1e-6 agreement, and writes `BENCH_replay.json` with
//! the per-cell speedup the validator gates on.
//!
//! `--metrics` prints a pipeline metrics summary (counters, gauges,
//! histograms) after the run; `--trace-out FILE` writes a Chrome
//! trace-event JSON file loadable in `chrome://tracing` or Perfetto.

use compile_time_dvs::check::{run_check, CheckConfig, Tolerances};
use compile_time_dvs::compiler::{analyze_params, emit_instrumented, DeadlineScheme, DvsCompiler};
use compile_time_dvs::ir;
use compile_time_dvs::model::DiscreteModel;
use compile_time_dvs::obs;
use compile_time_dvs::runtime::Pool;
use compile_time_dvs::serve;
use compile_time_dvs::sim::Machine;
use compile_time_dvs::verify;
use compile_time_dvs::vf::{AlphaPower, TransitionModel, VoltageLadder};
use compile_time_dvs::workloads::Benchmark;
use std::process::ExitCode;

#[derive(Clone)]
struct Args {
    benchmark: Option<String>,
    deadline_index: usize,
    levels: usize,
    capacitance_uf: f64,
    emit: Option<String>,
    validate: bool,
    certify: bool,
    metrics: bool,
    trace_out: Option<String>,
    jobs: usize,
    seeds: u64,
    seed_base: u64,
    max_blocks: usize,
    repro_out: Option<String>,
    json: bool,
    deny: bool,
    dot: Option<String>,
    mutate: Option<u64>,
    addr: String,
    cache_bytes: usize,
    queue_depth: usize,
    clients: usize,
    requests: usize,
    timeout_secs: Option<f64>,
    client_op: Option<String>,
    quick: bool,
    out: Option<String>,
    solver: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dvsc list\n  dvsc [compile] --benchmark <name> [--deadline 1..5] \
         [--levels N] [--capacitance µF] [--emit FILE] [--no-validate]\n  \
         \x20              [--solver auto|bnb|continuous] [--certify] [--metrics] \
         [--trace-out FILE] [--jobs N]\n  \
         dvsc analyze --benchmark <name> [--levels N]\n  \
         dvsc check [--seeds N] [--seed-base S] [--max-blocks K] [--jobs J] \
         [--repro-out FILE]\n  \
         dvsc verify [--benchmark <name>] [--deadline 1..5] [--deny] [--json] \
         [--dot FILE]\n  \
         \x20              [--mutate SEED] [--levels N] [--capacitance µF] [--jobs N]\n  \
         dvsc serve [--addr HOST:PORT] [--jobs N] [--cache-bytes B] [--queue-depth D]\n  \
         dvsc client <compile|verify|evaluate|certify|ping|stats|traces|shutdown> \
         [--addr HOST:PORT] [--benchmark <name>]\n  \
         \x20              [--deadline 1..5] [--levels N] [--capacitance µF] \
         [--solver NAME] [--json]\n  \
         dvsc client trace <compile|verify|evaluate|certify> --benchmark <name> \
         [--deadline 1..5]\n  \
         dvsc loadtest [--addr HOST:PORT] [--clients N] [--requests M] \
         [--benchmark <name>]\n  \
         dvsc bench-solver [--quick] [--jobs N] [--out FILE]\n  \
         dvsc bench-replay [--quick] [--jobs N] [--out FILE]\n  \
         dvsc --timeout <secs> ...   (bounds compile/verify/check; request \
         deadline for client/loadtest)\n  \
         dvsc --version"
    );
    ExitCode::from(2)
}

/// Parses the command line, reporting exactly which flag failed and why.
/// A leading flag (no subcommand) implies `compile`, so the common
/// `dvsc --benchmark adpcm --deadline 2` invocation works as-is.
fn parse(argv: &[String]) -> Result<(String, Args), String> {
    let mut it = argv.iter().peekable();
    let cmd = match it.peek() {
        None => return Err("missing subcommand (try `dvsc list`)".into()),
        Some(tok) if tok.starts_with('-') => "compile".to_string(),
        Some(_) => it.next().expect("peeked").clone(),
    };
    let mut args = Args {
        benchmark: None,
        deadline_index: 3,
        levels: 3,
        capacitance_uf: 0.05,
        emit: None,
        validate: true,
        certify: false,
        metrics: false,
        trace_out: None,
        jobs: 1,
        seeds: 1000,
        seed_base: 42,
        max_blocks: 6,
        repro_out: None,
        json: false,
        deny: false,
        dot: None,
        mutate: None,
        addr: "127.0.0.1:7411".to_string(),
        cache_bytes: 64 << 20,
        queue_depth: 64,
        clients: 4,
        requests: 100,
        timeout_secs: None,
        client_op: None,
        quick: false,
        out: None,
        solver: "auto".to_string(),
    };
    // `client` takes a positional operation before any flags — two for
    // `client trace <op>`.
    if cmd == "client" {
        let mut ops: Vec<String> = Vec::new();
        while let Some(tok) = it.peek() {
            if tok.starts_with('-') || ops.len() == 2 {
                break;
            }
            ops.push(it.next().expect("peeked").clone());
        }
        if !ops.is_empty() {
            args.client_op = Some(ops.join(" "));
        }
    }
    fn value<'a>(
        flag: &str,
        it: &mut impl Iterator<Item = &'a String>,
    ) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} requires a value"))
    }
    fn number<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{flag}: invalid value `{raw}` (expected a number)"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--benchmark" | "-b" => args.benchmark = Some(value(flag, &mut it)?.clone()),
            "--deadline" | "-d" => {
                args.deadline_index = number(flag, value(flag, &mut it)?)?;
            }
            "--levels" | "-l" => args.levels = number(flag, value(flag, &mut it)?)?,
            "--capacitance" | "-c" => {
                args.capacitance_uf = number(flag, value(flag, &mut it)?)?;
            }
            "--emit" | "-e" => args.emit = Some(value(flag, &mut it)?.clone()),
            "--no-validate" => args.validate = false,
            "--certify" => args.certify = true,
            "--metrics" | "-m" => args.metrics = true,
            "--trace-out" | "-t" => args.trace_out = Some(value(flag, &mut it)?.clone()),
            "--jobs" | "-j" => {
                args.jobs = number(flag, value(flag, &mut it)?)?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--seeds" => {
                args.seeds = number(flag, value(flag, &mut it)?)?;
                if args.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--seed-base" => args.seed_base = number(flag, value(flag, &mut it)?)?,
            "--max-blocks" => {
                args.max_blocks = number(flag, value(flag, &mut it)?)?;
                if args.max_blocks < 3 {
                    return Err("--max-blocks must be at least 3 (entry, body, exit)".into());
                }
            }
            "--repro-out" => args.repro_out = Some(value(flag, &mut it)?.clone()),
            "--addr" | "-a" => args.addr = value(flag, &mut it)?.clone(),
            "--cache-bytes" => args.cache_bytes = number(flag, value(flag, &mut it)?)?,
            "--queue-depth" => args.queue_depth = number(flag, value(flag, &mut it)?)?,
            "--clients" => {
                args.clients = number(flag, value(flag, &mut it)?)?;
                if args.clients == 0 {
                    return Err("--clients must be at least 1".into());
                }
            }
            "--requests" => {
                args.requests = number(flag, value(flag, &mut it)?)?;
                if args.requests == 0 {
                    return Err("--requests must be at least 1".into());
                }
            }
            "--timeout" => {
                let secs: f64 = number(flag, value(flag, &mut it)?)?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--timeout must be positive".into());
                }
                args.timeout_secs = Some(secs);
            }
            "--solver" => {
                let raw = value(flag, &mut it)?;
                if compile_time_dvs::compiler::SolverChoice::parse(raw).is_none() {
                    return Err(format!(
                        "--solver: unknown backend `{raw}` (expected auto, bnb, \
                         branch-and-bound or continuous)"
                    ));
                }
                args.solver = raw.clone();
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--quick" => args.quick = true,
            "--out" | "-o" => args.out = Some(value(flag, &mut it)?.clone()),
            "--dot" => args.dot = Some(value(flag, &mut it)?.clone()),
            "--mutate" => args.mutate = Some(number(flag, value(flag, &mut it)?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((cmd, args))
}

/// Emits the requested observability outputs after a run.
fn finalize_obs(args: &Args) -> Result<(), ExitCode> {
    if let Some(path) = &args.trace_out {
        let json = obs::chrome_trace_string();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        eprintln!("wrote Chrome trace to {path} (load in chrome://tracing or Perfetto)");
    }
    if args.metrics {
        print!("{}", obs::MetricsSnapshot::capture().summary_table());
    }
    Ok(())
}

fn find_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name || b.name().starts_with(name))
}

fn ladder(levels: usize) -> Option<VoltageLadder> {
    let law = AlphaPower::paper();
    if levels == 3 {
        Some(VoltageLadder::xscale3(&law))
    } else {
        VoltageLadder::interpolated(&law, levels).ok()
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--version" || a == "-V") {
        println!("dvsc {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let (cmd, args) = match parse(&argv) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}");
            return usage();
        }
    };
    if args.metrics || args.trace_out.is_some() {
        obs::enable();
        obs::reset();
    }
    let code = match cmd.as_str() {
        "list" => {
            println!("{:<14} inputs", "benchmark");
            for b in Benchmark::all() {
                let names: Vec<String> = b.inputs().into_iter().map(|i| i.name).collect();
                println!("{:<14} {}", b.name(), names.join(", "));
            }
            0
        }
        "compile" => with_timeout(&args, "compile", run_compile),
        "analyze" => run_analyze(&args),
        "check" => with_timeout(&args, "check", run_checker),
        "verify" => with_timeout(&args, "verify", run_verify),
        "serve" => run_serve(&args),
        "client" => run_client(&args),
        "loadtest" => run_loadtest(&args),
        "bench-solver" => run_bench_solver(&args),
        "bench-replay" => run_bench_replay(&args),
        other => {
            eprintln!("error: unknown subcommand `{other}`");
            return usage();
        }
    };
    // Only emit trace/metrics for runs that did real work; a usage error
    // would otherwise print an empty metrics table after the message.
    if code == 0 {
        if let Err(fail) = finalize_obs(&args) {
            return fail;
        }
    }
    ExitCode::from(code)
}

/// Runs `work` under the global `--timeout` watchdog: the command's exit
/// code if it finishes in time, exit code 3 (and an error message) if the
/// deadline expires. Without `--timeout`, runs inline.
fn with_timeout(args: &Args, label: &str, work: fn(&Args) -> u8) -> u8 {
    let Some(secs) = args.timeout_secs else {
        return work(args);
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let owned = args.clone();
    std::thread::spawn(move || {
        let _ = tx.send(work(&owned));
    });
    match rx.recv_timeout(std::time::Duration::from_secs_f64(secs)) {
        Ok(code) => code,
        Err(_) => {
            eprintln!("error: {label} timed out after {secs}s");
            3
        }
    }
}

/// The server-side request deadline derived from `--timeout`.
fn timeout_ms(args: &Args) -> Option<u64> {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    args.timeout_secs.map(|s| (s * 1e3).ceil() as u64)
}

/// `dvsc serve`: run the compilation daemon until a client sends
/// `shutdown`.
fn run_serve(args: &Args) -> u8 {
    let config = serve::ServeConfig {
        addr: args.addr.clone(),
        jobs: args.jobs,
        cache_bytes: args.cache_bytes,
        queue_depth: args.queue_depth,
    };
    let server = match serve::Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.addr);
            return 1;
        }
    };
    let addr = server
        .local_addr()
        .map_or_else(|_| args.addr.clone(), |a| a.to_string());
    println!(
        "dvs-serve listening on {addr} (jobs {}, cache {} KiB, queue depth {})",
        args.jobs,
        args.cache_bytes >> 10,
        args.queue_depth
    );
    println!("stop with: dvsc client shutdown --addr {addr}");
    match server.run() {
        Ok(s) => {
            println!(
                "drained: {} requests, {} solves, {} coalesced, {} shed, {} timeouts; \
                 cache {} hits / {} misses / {} evictions",
                s.requests,
                s.solves,
                s.coalesced,
                s.shed,
                s.timeouts,
                s.cache.hits,
                s.cache.misses,
                s.cache.evictions
            );
            0
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            1
        }
    }
}

/// Renders a per-request trace tree as an indented span listing, children
/// under their parents in recorded order.
fn print_trace(tree: &obs::json::Json) {
    let trace_id = tree.get("trace_id").and_then(obs::json::Json::as_u64);
    let Some(spans) = tree.get("spans").and_then(obs::json::Json::as_arr) else {
        return;
    };
    println!("trace {}", trace_id.unwrap_or(0));
    fn walk(spans: &[obs::json::Json], parent: u64, depth: usize) {
        for s in spans {
            let get_u64 = |k: &str| s.get(k).and_then(obs::json::Json::as_u64);
            if get_u64("parent") != Some(parent) {
                continue;
            }
            let name = s
                .get("name")
                .and_then(obs::json::Json::as_str)
                .unwrap_or("?");
            let ts = s
                .get("ts_us")
                .and_then(obs::json::Json::as_f64)
                .unwrap_or(0.0);
            let dur = s
                .get("dur_us")
                .and_then(obs::json::Json::as_f64)
                .unwrap_or(0.0);
            println!(
                "  {:indent$}{name:<width$} +{:<9} {}",
                "",
                obs::format_us(ts),
                obs::format_us(dur),
                indent = depth * 2,
                width = 14usize.saturating_sub(depth * 2),
            );
            if let Some(id) = get_u64("id") {
                walk(spans, id, depth + 1);
            }
        }
    }
    walk(spans, 0, 0);
}

/// `dvsc client <op>`: one request against a running daemon.
fn run_client(args: &Args) -> u8 {
    let Some(full_op) = args.client_op.as_deref() else {
        eprintln!(
            "client requires an operation: compile|verify|evaluate|certify|ping|stats|traces|shutdown"
        );
        return 2;
    };
    // `client trace compile` is the two-token form: run a solve and print
    // the server's per-request trace tree instead of the result body.
    let (want_trace, op) = match full_op.split_once(' ') {
        Some(("trace", inner)) => (true, inner),
        Some(_) => {
            eprintln!("unknown client operation `{full_op}` (did you mean `trace <op>`?)");
            return 2;
        }
        None => (false, full_op),
    };
    let request = match op {
        "ping" => serve::Request::Ping,
        "stats" => serve::Request::Stats,
        "traces" => serve::Request::Traces,
        "shutdown" => serve::Request::Shutdown,
        "compile" | "verify" | "evaluate" | "certify" => {
            let Some(name) = &args.benchmark else {
                eprintln!("client {op} requires --benchmark");
                return 2;
            };
            serve::Request::Solve(serve::SolveRequest {
                op: match op {
                    "compile" => serve::SolveOp::Compile,
                    "verify" => serve::SolveOp::Verify,
                    "certify" => serve::SolveOp::Certify,
                    _ => serve::SolveOp::Evaluate,
                },
                benchmark: name.clone(),
                deadline_index: args.deadline_index,
                levels: args.levels,
                capacitance_uf: args.capacitance_uf,
                solver: args.solver.clone(),
                timeout_ms: timeout_ms(args),
                // A stable client-chosen id makes the request easy to find
                // in the daemon's trace ring later.
                trace_id: want_trace.then(|| {
                    let mut h = compile_time_dvs::compiler::fingerprint::Fnv64::new();
                    h.write_str(name);
                    h.write_usize(args.deadline_index);
                    h.finish() % 1_000_000
                }),
            })
        }
        other => {
            eprintln!(
                "unknown client operation `{other}` \
                 (compile|verify|evaluate|certify|ping|stats|traces|shutdown)"
            );
            return 2;
        }
    };
    if want_trace && !matches!(request, serve::Request::Solve(_)) {
        eprintln!("client trace takes a solve operation: compile|verify|evaluate|certify");
        return 2;
    }
    // The server enforces the request deadline itself, so the socket
    // timeout only guards against a dead daemon — give it slack.
    let socket_timeout = args
        .timeout_secs
        .map(|s| std::time::Duration::from_secs_f64(s + 5.0));
    let mut client = match serve::Client::connect(&args.addr, socket_timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", args.addr);
            return 1;
        }
    };
    let reply = match client.request(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request failed: {e}");
            return 1;
        }
    };
    if !reply.ok {
        eprintln!(
            "error: {}: {}",
            reply.kind.as_deref().unwrap_or("error"),
            reply.error.as_deref().unwrap_or("unknown failure")
        );
        return 1;
    }
    let body = reply.result.unwrap_or(obs::json::Json::Null);
    if want_trace {
        let Some(tree) = &reply.trace else {
            eprintln!("reply carried no trace (daemon predates tracing?)");
            return 1;
        };
        if args.json {
            println!("{}", tree.dump());
        } else {
            println!(
                "{op}: cached={} server={:.1} ms",
                reply.cached,
                reply.server_us / 1e3
            );
            print_trace(tree);
        }
        return 0;
    }
    match op {
        "ping" => println!("pong (server {:.0} µs)", reply.server_us),
        "stats" | "traces" | "shutdown" => {
            println!(
                "{}",
                if args.json {
                    body.dump()
                } else {
                    body.pretty()
                }
            );
            if op == "shutdown" && !args.json {
                println!("server drained and stopped");
            }
        }
        _ => {
            if args.json {
                println!("{}", body.dump());
            } else {
                println!(
                    "{op}: cached={} server={:.1} ms",
                    reply.cached,
                    reply.server_us / 1e3
                );
                println!("{}", body.pretty());
            }
        }
    }
    0
}

/// `dvsc loadtest`: hammer a daemon and write `results/serve.csv`.
fn run_loadtest(args: &Args) -> u8 {
    // Latency histograms land in dvs-obs (under the `serve.loadtest`
    // domain) regardless of `--metrics`.
    obs::enable();
    let config = serve::LoadtestConfig {
        addr: args.addr.clone(),
        clients: args.clients,
        requests: args.requests,
        benchmark: args.benchmark.clone(),
        levels: args.levels,
        capacitance_uf: args.capacitance_uf,
        timeout_ms: timeout_ms(args),
    };
    let report = match serve::run_loadtest(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadtest failed: {e}");
            return 1;
        }
    };
    println!(
        "{} requests over {} clients in {:.2} s: {:.1} req/s",
        args.requests, args.clients, report.wall_s, report.throughput_rps
    );
    println!(
        "latency p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
        report.latency.p50_us / 1e3,
        report.latency.p90_us / 1e3,
        report.latency.p99_us / 1e3,
        report.latency.max_us / 1e3
    );
    println!(
        "cache-hit rate {:.1}% ({} completed, {} shed, {} errors)",
        100.0 * report.cache_hit_rate,
        report.completed,
        report.shed,
        report.errors
    );
    println!(
        "server-side (from traces): queue wait {} mean, cache lookup {} mean",
        obs::format_us(report.mean_queue_wait_us),
        obs::format_us(report.mean_cache_lookup_us)
    );
    let csv = format!(
        "# dvsc loadtest against {}\n\
         domain,clients,requests,completed,shed,errors,wall_s,throughput_rps,\
         p50_us,p90_us,p99_us,max_us,mean_us,cache_hit_rate,\
         queue_wait_us,cache_lookup_us\n\
         serve.loadtest,{},{},{},{},{},{:.6},{:.3},{:.1},{:.1},{:.1},{:.1},{:.1},{:.4},\
         {:.1},{:.1}\n",
        args.addr,
        args.clients,
        args.requests,
        report.completed,
        report.shed,
        report.errors,
        report.wall_s,
        report.throughput_rps,
        report.latency.p50_us,
        report.latency.p90_us,
        report.latency.p99_us,
        report.latency.max_us,
        report.latency.mean_us,
        report.cache_hit_rate,
        report.mean_queue_wait_us,
        report.mean_cache_lookup_us
    );
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write("results/serve.csv", csv))
    {
        eprintln!("cannot write results/serve.csv: {e}");
        return 1;
    }
    println!("wrote results/serve.csv");
    u8::from(report.errors > 0)
}

/// `dvsc bench-solver`: run the pinned MILP benchmark grid and write the
/// `BENCH_solver.json` baseline document.
fn run_bench_solver(args: &Args) -> u8 {
    use compile_time_dvs::bench_solver::{run_bench_solver, BenchSolverConfig};
    let config = BenchSolverConfig {
        quick: args.quick,
        jobs: args.jobs,
    };
    let report = run_bench_solver(&config);
    let path = args.out.as_deref().unwrap_or("BENCH_solver.json");
    if let Err(e) = std::fs::write(path, report.pretty() + "\n") {
        eprintln!("cannot write {path}: {e}");
        return 1;
    }
    let total = |k: &str| {
        report
            .get("totals")
            .and_then(|t| t.get(k))
            .and_then(obs::json::Json::as_u64)
            .unwrap_or(0)
    };
    let errors = report
        .get("cases")
        .and_then(obs::json::Json::as_arr)
        .map_or(0, |cs| {
            cs.iter().filter(|c| c.get("error").is_some()).count()
        });
    println!(
        "bench-solver ({} mode): {} cases, {} B&B nodes, {} LP iterations, {} pivots",
        report
            .get("mode")
            .and_then(obs::json::Json::as_str)
            .unwrap_or("?"),
        total("cases"),
        total("nodes"),
        total("lp_iterations"),
        total("pivots")
    );
    println!("wrote {path}");
    if errors > 0 {
        eprintln!("error: {errors} case(s) failed to solve");
        return 1;
    }
    0
}

/// `dvsc bench-replay`: score the bytecode interpreter against the
/// cycle-level simulator on the pinned grid and write the
/// `BENCH_replay.json` baseline document.
fn run_bench_replay(args: &Args) -> u8 {
    use compile_time_dvs::bench_replay::{run_bench_replay, BenchReplayConfig};
    let config = BenchReplayConfig {
        quick: args.quick,
        jobs: args.jobs,
    };
    let report = run_bench_replay(&config);
    let path = args.out.as_deref().unwrap_or("BENCH_replay.json");
    if let Err(e) = std::fs::write(path, report.pretty() + "\n") {
        eprintln!("cannot write {path}: {e}");
        return 1;
    }
    let agree = report
        .get("totals")
        .and_then(|t| t.get("agreement_ok"))
        .and_then(obs::json::Json::as_bool)
        .unwrap_or(false);
    println!(
        "bench-replay ({} mode): {} cases, {} trace insts, median speedup {:.1}x, \
         agreement {}",
        report
            .get("mode")
            .and_then(obs::json::Json::as_str)
            .unwrap_or("?"),
        report
            .get("totals")
            .and_then(|t| t.get("cases"))
            .and_then(obs::json::Json::as_u64)
            .unwrap_or(0),
        report
            .get("totals")
            .and_then(|t| t.get("trace_insts"))
            .and_then(obs::json::Json::as_u64)
            .unwrap_or(0),
        report
            .get("speedup")
            .and_then(|s| s.get("median"))
            .and_then(obs::json::Json::as_f64)
            .unwrap_or(0.0),
        if agree { "ok" } else { "FAILED" }
    );
    println!("wrote {path}");
    if !agree {
        eprintln!("error: bytecode and simulator disagreed beyond 1e-6");
        return 1;
    }
    0
}

fn run_compile(args: &Args) -> u8 {
    let Some(name) = &args.benchmark else {
        eprintln!("compile requires --benchmark");
        return 2;
    };
    let Some(b) = find_benchmark(name) else {
        eprintln!("unknown benchmark `{name}` (try `dvsc list`)");
        return 2;
    };
    if !(1..=5).contains(&args.deadline_index) {
        eprintln!("--deadline must be 1..5");
        return 2;
    }
    let Some(ladder) = ladder(args.levels) else {
        eprintln!("bad --levels");
        return 2;
    };

    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let machine = Machine::paper_default();
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let deadline = scheme.deadline_us(args.deadline_index);
    println!(
        "{}: t200={:.1} t600={:.1} t800={:.1} µs; deadline D{} = {:.1} µs",
        b.name(),
        scheme.t_slow_us,
        scheme.t_mid_us,
        scheme.t_fast_us,
        args.deadline_index,
        deadline
    );

    // `--jobs` feeds both knobs: grid fan-out (for compile_grid users) and
    // the MILP's parallel root split (capped at the 2 root children).
    let compiler = match DvsCompiler::builder(
        machine,
        ladder,
        TransitionModel::with_capacitance_uf(args.capacitance_uf),
    )
    .validation(args.validate)
    .certify(args.certify)
    .jobs(args.jobs)
    .solver_jobs(args.jobs.min(2))
    .solver(
        compile_time_dvs::compiler::SolverChoice::parse(&args.solver)
            .expect("--solver was validated during argument parsing"),
    )
    .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad compiler settings: {e}");
            return 2;
        }
    };
    let (profile, _) = compiler.profile(&cfg, &trace);
    let result = match compiler.compile_and_validate(&cfg, &trace, &profile, deadline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compile failed: {e}");
            return 1;
        }
    };

    println!(
        "MILP: {:.1} µs predicted, {:.2} µJ predicted ({} B&B nodes, {:.1} ms solve)",
        result.milp.predicted_time_us,
        result.milp.predicted_energy_uj,
        result.milp.solve_stats.nodes,
        result.milp.solve_time.as_secs_f64() * 1e3,
    );
    // A rejected certificate never reaches this point: the compiler gate
    // turns it into a `PassError::Certify` failure (exit 1 above).
    if let Some(cert) = &result.milp.certificate {
        println!(
            "certificate: accepted by independent checker ({} bound / {} farkas / {} empty \
             leaves, {} branch nodes, {} bytes, checked in {:.0} µs)",
            cert.report.bound_leaves,
            cert.report.farkas_leaves,
            cert.report.empty_leaves,
            cert.report.branch_nodes,
            cert.encoded.len(),
            cert.check_us,
        );
    }
    if let Some((m, t, e)) = result.single_mode {
        println!(
            "best single mode: {} -> {:.1} µs, {:.2} µJ  (savings {:.1}%)",
            compiler.ladder().point(m),
            t,
            e,
            100.0 * result.savings_vs_single().unwrap_or(0.0)
        );
    }
    if let Some(v) = &result.validated {
        println!(
            "validated: {:.1} µs measured, {:.2} µJ measured, {} transitions",
            v.time_us, v.processor_energy_uj, v.transitions
        );
    }
    println!(
        "mode-sets: {} live of {} edges ({} silent, hoistable)",
        result.analysis.num_live(),
        cfg.num_edges(),
        result.analysis.num_silent(),
    );
    if let Some(path) = &args.emit {
        let (listing, stats) = emit_instrumented(
            &cfg,
            compiler.ladder(),
            &result.milp.schedule,
            &result.analysis,
        );
        if let Err(e) = std::fs::write(path, listing) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!(
            "wrote {path} ({} of {} naive mode-sets emitted)",
            stats.emitted_mode_sets, stats.naive_mode_sets
        );
    }
    0
}

/// `dvsc check`: differential fuzzing of the compiler pipeline. The report
/// is byte-identical for any `--jobs` value; exit code 1 signals at least
/// one oracle disagreement.
fn run_checker(args: &Args) -> u8 {
    let config = CheckConfig {
        seeds: args.seeds,
        seed_base: args.seed_base,
        max_blocks: args.max_blocks,
        jobs: args.jobs,
        ..CheckConfig::default()
    };
    let report = run_check(&config, &Tolerances::default());
    print!("{}", report.render());
    if let Some(path) = &args.repro_out {
        let lines = report.repro_lines().join("\n");
        if let Err(e) = std::fs::write(path, lines + "\n") {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        if !report.ok() {
            eprintln!(
                "wrote {} repro line(s) to {path}",
                report.repro_lines().len()
            );
        }
    }
    u8::from(!report.ok())
}

/// Everything `verify` learned about one benchmark that compiled: the
/// static report, the resolved deadline, an optional mutation note, an
/// optional rendered DOT overlay, and the dynamic bytecode replay with its
/// simulator cross-check.
struct VerifyOk {
    report: verify::VerifyReport,
    deadline: f64,
    mutation: Option<String>,
    dot: Option<String>,
    replay: verify::ReplayCheck,
}

/// Per-benchmark outcome: findings or the reason the compile could not
/// produce a schedule.
struct VerifyOut {
    name: &'static str,
    outcome: Result<VerifyOk, String>,
}

#[allow(clippy::too_many_lines)]
fn verify_one(b: Benchmark, ladder: &VoltageLadder, args: &Args, want_dot: bool) -> VerifyOut {
    let name = b.name();
    let run = || -> Result<VerifyOk, String> {
        let cfg = b.build_cfg();
        let trace = b.trace(&cfg, &b.default_input());
        let machine = Machine::paper_default();
        let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
        let deadline = scheme.deadline_us(args.deadline_index);
        let transition = TransitionModel::with_capacitance_uf(args.capacitance_uf);
        let compiler = DvsCompiler::builder(machine.clone(), ladder.clone(), transition)
            .validation(false)
            .solver_jobs(1)
            .build()
            .map_err(|e| format!("bad compiler settings: {e}"))?;
        let (profile, _) = compiler.profile(&cfg, &trace);
        let result = compiler
            .compile(&cfg, &profile, deadline)
            .map_err(|e| format!("compile failed: {e}"))?;
        let mut schedule = result.milp.schedule.clone();
        let mut mask: Option<Vec<bool>> = Some(result.analysis.emitted_mask());
        let mut mutation = None;
        if let Some(seed) = args.mutate {
            // Corrupt one hot mode-set: drop it a level. The hoisting mask
            // was proven for the original schedule, so the mutant is
            // verified under naive emission.
            let mut eligible: Vec<_> = cfg
                .edges()
                .filter(|e| {
                    profile.edge_count(e.id) > 0 && schedule.edge_modes[e.id.index()].index() > 0
                })
                .map(|e| e.id)
                .collect();
            eligible.sort_by_key(|&e| std::cmp::Reverse(profile.edge_count(e)));
            if eligible.is_empty() {
                return Err("no executed edge above the slowest mode to mutate".into());
            }
            let pick = eligible[(seed as usize) % eligible.len()];
            let old = schedule.edge_modes[pick.index()];
            let new = compile_time_dvs::vf::ModeId(old.index() - 1);
            schedule.edge_modes[pick.index()] = new;
            mask = None;
            mutation = Some(format!(
                "mutated edge {pick} ({} -> {}): m{} -> m{}",
                cfg.block(cfg.edge(pick).src).label,
                cfg.block(cfg.edge(pick).dst).label,
                old.index(),
                new.index()
            ));
        }
        let report = verify::verify(&verify::VerifyInput {
            cfg: &cfg,
            profile: &profile,
            ladder,
            transition: &transition,
            schedule: &schedule,
            emitted: mask.as_deref(),
            deadline_us: Some(deadline),
        });
        let dot = want_dot.then(|| {
            let overlay = ir::DotOverlay {
                edge_modes: schedule
                    .edge_modes
                    .iter()
                    .map(|m| Some(m.index()))
                    .collect(),
                emitted: mask.clone().unwrap_or_else(|| vec![true; cfg.num_edges()]),
                block_modes: report
                    .flow
                    .exec_block
                    .iter()
                    .map(|s| (s.len() == 1).then(|| *s.iter().next().expect("len 1")))
                    .collect(),
                block_notes: report
                    .diagnostics
                    .iter()
                    .filter_map(|d| d.block.map(|b| (b, d.code.code().to_string())))
                    .collect(),
                edge_notes: report
                    .diagnostics
                    .iter()
                    .filter_map(|d| d.edge.map(|e| (e, d.code.code().to_string())))
                    .collect(),
            };
            ir::cfg_to_dot_overlay(&cfg, Some(&profile), &overlay)
        });
        // Dynamic complement to the static report: bytecode fast path with
        // the cycle-level simulator cross-checking it to 1e-6.
        let replay =
            verify::replay_check(&machine, &cfg, &trace, ladder, &transition, &schedule, true);
        Ok(VerifyOk {
            report,
            deadline,
            mutation,
            dot,
            replay,
        })
    };
    VerifyOut {
        name,
        outcome: run(),
    }
}

/// `dvsc verify`: static schedule verification over built-in benchmarks.
/// Exit code 1 under `--deny` if any benchmark draws an error-severity
/// diagnostic (or fails to compile at all).
fn run_verify(args: &Args) -> u8 {
    let benches: Vec<Benchmark> = match &args.benchmark {
        Some(name) => match find_benchmark(name) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown benchmark `{name}` (try `dvsc list`)");
                return 2;
            }
        },
        None => Benchmark::all().to_vec(),
    };
    if !(1..=5).contains(&args.deadline_index) {
        eprintln!("--deadline must be 1..5");
        return 2;
    }
    if args.dot.is_some() && benches.len() != 1 {
        eprintln!("--dot requires --benchmark (one CFG per overlay)");
        return 2;
    }
    let Some(ladder) = ladder(args.levels) else {
        eprintln!("bad --levels");
        return 2;
    };

    let want_dot = args.dot.is_some();
    let pool = Pool::new(args.jobs);
    let results = pool.map(benches, |_, b| verify_one(b, &ladder, args, want_dot));

    let mut denied = false;
    let mut json_rows = Vec::new();
    for r in &results {
        match &r.outcome {
            Ok(VerifyOk {
                report,
                deadline,
                mutation,
                dot,
                replay,
            }) => {
                let failed = !report.ok() || !replay.ok();
                denied |= failed;
                if args.json {
                    let mut row = vec![
                        ("benchmark", obs::json::Json::from(r.name)),
                        (
                            "deadline_index",
                            obs::json::Json::from(args.deadline_index as u64),
                        ),
                        ("report", report.to_json()),
                        (
                            "replay",
                            obs::json::Json::obj(vec![
                                ("time_us", obs::json::Json::from(replay.run.time_us)),
                                (
                                    "processor_energy_uj",
                                    obs::json::Json::from(replay.run.processor_energy_uj),
                                ),
                                (
                                    "dram_energy_uj",
                                    obs::json::Json::from(replay.run.dram_energy_uj),
                                ),
                                ("transitions", obs::json::Json::from(replay.run.transitions)),
                                (
                                    "oracle_checked",
                                    obs::json::Json::from(replay.oracle_checked),
                                ),
                                (
                                    "disagreements",
                                    obs::json::Json::Arr(
                                        replay
                                            .disagreements
                                            .iter()
                                            .map(|d| obs::json::Json::from(d.as_str()))
                                            .collect(),
                                    ),
                                ),
                            ]),
                        ),
                    ];
                    if let Some(m) = mutation {
                        row.push(("mutation", obs::json::Json::from(m.as_str())));
                    }
                    json_rows.push(obs::json::Json::obj(row));
                } else {
                    println!(
                        "{}: {} — {} errors, {} warnings, {} infos; modeled {:.1} µs, \
                         wcet {:.1} µs, replayed {:.1} µs ({} transitions, sim-checked), \
                         deadline D{} = {:.1} µs",
                        r.name,
                        if failed { "FAIL" } else { "ok" },
                        report.count(verify::Severity::Error),
                        report.count(verify::Severity::Warning),
                        report.count(verify::Severity::Info),
                        report.modeled_time_us,
                        report.wcet.bound_us,
                        replay.run.time_us,
                        replay.run.transitions,
                        args.deadline_index,
                        deadline
                    );
                    if let Some(m) = mutation {
                        println!("  {m}");
                    }
                    for d in &report.diagnostics {
                        println!("  {}", d.render());
                    }
                    for d in &replay.disagreements {
                        println!("  replay-oracle: {d}");
                    }
                }
                if let (Some(path), Some(dot)) = (&args.dot, dot) {
                    if let Err(e) = std::fs::write(path, dot) {
                        eprintln!("cannot write {path}: {e}");
                        return 1;
                    }
                    if !args.json {
                        println!("  wrote mode overlay to {path}");
                    }
                }
            }
            Err(msg) => {
                denied = true;
                if args.json {
                    json_rows.push(obs::json::Json::obj(vec![
                        ("benchmark", obs::json::Json::from(r.name)),
                        ("error", obs::json::Json::from(msg.as_str())),
                    ]));
                } else {
                    println!("{}: FAIL — {msg}", r.name);
                }
            }
        }
    }
    if args.json {
        println!(
            "{}",
            obs::json::Json::obj(vec![
                ("denied", obs::json::Json::from(denied && args.deny)),
                ("benchmarks", obs::json::Json::Arr(json_rows)),
            ])
            .dump()
        );
    }
    u8::from(args.deny && denied)
}

fn run_analyze(args: &Args) -> u8 {
    let Some(name) = &args.benchmark else {
        eprintln!("analyze requires --benchmark");
        return 2;
    };
    let Some(b) = find_benchmark(name) else {
        eprintln!("unknown benchmark `{name}` (try `dvsc list`)");
        return 2;
    };
    let Some(ladder) = ladder(args.levels) else {
        eprintln!("bad --levels");
        return 2;
    };
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let machine = Machine::paper_default();
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let compiler = match DvsCompiler::builder(machine, ladder.clone(), TransitionModel::free())
        .jobs(args.jobs)
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad compiler settings: {e}");
            return 2;
        }
    };
    let (_, runs) = compiler.profile(&cfg, &trace);
    let params = analyze_params(&runs);
    println!(
        "{}: Noverlap={:.0} Ndependent={:.0} Ncache={:.0} cycles, tinvariant={:.1} µs",
        b.name(),
        params.n_overlap,
        params.n_dependent,
        params.n_cache,
        params.t_invariant_us
    );
    let model = DiscreteModel::new(ladder);
    println!("{:<4} {:>12} {:>10}", "D", "deadline µs", "bound");
    for i in 1..=5usize {
        let d = scheme.deadline_us(i);
        let s = model
            .savings(&params, d)
            .map_or("inf.".to_string(), |s| format!("{s:.3}"));
        println!("D{i:<3} {d:>12.1} {s:>10}");
    }
    0
}
