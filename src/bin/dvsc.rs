//! `dvsc` — command-line front end for the compile-time DVS pass.
//!
//! ```text
//! dvsc list
//! dvsc compile --benchmark gsm --deadline 3 [--levels 3] [--capacitance 0.05]
//!              [--emit listing.s] [--no-validate]
//! dvsc analyze --benchmark epic [--levels 7]
//! ```
//!
//! `compile` runs profile → filter → MILP → schedule on a built-in
//! workload, re-simulates the schedule and prints predicted vs measured
//! numbers. `analyze` prints the §3 analytical parameters and the
//! savings bound per deadline.

use compile_time_dvs::compiler::{
    analyze_params, emit_instrumented, DeadlineScheme, DvsCompiler,
};
use compile_time_dvs::model::DiscreteModel;
use compile_time_dvs::sim::Machine;
use compile_time_dvs::vf::{AlphaPower, TransitionModel, VoltageLadder};
use compile_time_dvs::workloads::Benchmark;
use std::process::ExitCode;

struct Args {
    benchmark: Option<String>,
    deadline_index: usize,
    levels: usize,
    capacitance_uf: f64,
    emit: Option<String>,
    validate: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dvsc list\n  dvsc compile --benchmark <name> [--deadline 1..5] \
         [--levels N] [--capacitance µF] [--emit FILE] [--no-validate]\n  \
         dvsc analyze --benchmark <name> [--levels N]"
    );
    ExitCode::from(2)
}

fn parse(mut argv: std::env::Args) -> Option<(String, Args)> {
    let cmd = argv.next()?;
    let mut args = Args {
        benchmark: None,
        deadline_index: 3,
        levels: 3,
        capacitance_uf: 0.05,
        emit: None,
        validate: true,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--benchmark" | "-b" => args.benchmark = Some(argv.next()?),
            "--deadline" | "-d" => args.deadline_index = argv.next()?.parse().ok()?,
            "--levels" | "-l" => args.levels = argv.next()?.parse().ok()?,
            "--capacitance" | "-c" => args.capacitance_uf = argv.next()?.parse().ok()?,
            "--emit" | "-e" => args.emit = Some(argv.next()?),
            "--no-validate" => args.validate = false,
            _ => return None,
        }
    }
    Some((cmd, args))
}

fn find_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name || b.name().starts_with(name))
}

fn ladder(levels: usize) -> Option<VoltageLadder> {
    let law = AlphaPower::paper();
    if levels == 3 {
        Some(VoltageLadder::xscale3(&law))
    } else {
        VoltageLadder::interpolated(&law, levels).ok()
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    let _ = argv.next();
    let Some((cmd, args)) = parse(argv) else { return usage() };
    match cmd.as_str() {
        "list" => {
            println!("{:<14} {}", "benchmark", "inputs");
            for b in Benchmark::all() {
                let names: Vec<String> =
                    b.inputs().into_iter().map(|i| i.name).collect();
                println!("{:<14} {}", b.name(), names.join(", "));
            }
            ExitCode::SUCCESS
        }
        "compile" => run_compile(&args),
        "analyze" => run_analyze(&args),
        _ => usage(),
    }
}

fn run_compile(args: &Args) -> ExitCode {
    let Some(name) = &args.benchmark else {
        eprintln!("compile requires --benchmark");
        return ExitCode::from(2);
    };
    let Some(b) = find_benchmark(name) else {
        eprintln!("unknown benchmark `{name}` (try `dvsc list`)");
        return ExitCode::from(2);
    };
    if !(1..=5).contains(&args.deadline_index) {
        eprintln!("--deadline must be 1..5");
        return ExitCode::from(2);
    }
    let Some(ladder) = ladder(args.levels) else {
        eprintln!("bad --levels");
        return ExitCode::from(2);
    };

    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let machine = Machine::paper_default();
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let deadline = scheme.deadline_us(args.deadline_index);
    println!(
        "{}: t200={:.1} t600={:.1} t800={:.1} µs; deadline D{} = {:.1} µs",
        b.name(),
        scheme.t_slow_us,
        scheme.t_mid_us,
        scheme.t_fast_us,
        args.deadline_index,
        deadline
    );

    let compiler = DvsCompiler::new(
        machine,
        ladder,
        TransitionModel::with_capacitance_uf(args.capacitance_uf),
    );
    let (profile, _) = compiler.profile(&cfg, &trace);
    let result = if args.validate {
        compiler.compile_and_validate(&cfg, &trace, &profile, deadline)
    } else {
        compiler.compile(&cfg, &profile, deadline)
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compile failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "MILP: {:.1} µs predicted, {:.2} µJ predicted ({} B&B nodes, {:.1} ms solve)",
        result.milp.predicted_time_us,
        result.milp.predicted_energy_uj,
        result.milp.solve_stats.nodes,
        result.milp.solve_time.as_secs_f64() * 1e3,
    );
    if let Some((m, t, e)) = result.single_mode {
        println!(
            "best single mode: {} -> {:.1} µs, {:.2} µJ  (savings {:.1}%)",
            compiler.ladder().point(m),
            t,
            e,
            100.0 * result.savings_vs_single().unwrap_or(0.0)
        );
    }
    if let Some(v) = &result.validated {
        println!(
            "validated: {:.1} µs measured, {:.2} µJ measured, {} transitions",
            v.time_us, v.processor_energy_uj, v.transitions
        );
    }
    println!(
        "mode-sets: {} live of {} edges ({} silent, hoistable)",
        result.analysis.num_live(),
        cfg.num_edges(),
        result.analysis.num_silent(),
    );
    if let Some(path) = &args.emit {
        let (listing, stats) = emit_instrumented(
            &cfg,
            compiler.ladder(),
            &result.milp.schedule,
            &result.analysis,
        );
        if let Err(e) = std::fs::write(path, listing) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path} ({} of {} naive mode-sets emitted)",
            stats.emitted_mode_sets, stats.naive_mode_sets
        );
    }
    ExitCode::SUCCESS
}

fn run_analyze(args: &Args) -> ExitCode {
    let Some(name) = &args.benchmark else {
        eprintln!("analyze requires --benchmark");
        return ExitCode::from(2);
    };
    let Some(b) = find_benchmark(name) else {
        eprintln!("unknown benchmark `{name}` (try `dvsc list`)");
        return ExitCode::from(2);
    };
    let Some(ladder) = ladder(args.levels) else {
        eprintln!("bad --levels");
        return ExitCode::from(2);
    };
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let machine = Machine::paper_default();
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let compiler = DvsCompiler::new(machine, ladder.clone(), TransitionModel::free());
    let (_, runs) = compiler.profile(&cfg, &trace);
    let params = analyze_params(&runs);
    println!(
        "{}: Noverlap={:.0} Ndependent={:.0} Ncache={:.0} cycles, tinvariant={:.1} µs",
        b.name(),
        params.n_overlap,
        params.n_dependent,
        params.n_cache,
        params.t_invariant_us
    );
    let model = DiscreteModel::new(ladder);
    println!("{:<4} {:>12} {:>10}", "D", "deadline µs", "bound");
    for i in 1..=5usize {
        let d = scheme.deadline_us(i);
        let s = model
            .savings(&params, d)
            .map_or("inf.".to_string(), |s| format!("{s:.3}"));
        println!("D{i:<3} {d:>12.1} {s:>10}");
    }
    ExitCode::SUCCESS
}
