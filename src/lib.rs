//! Facade crate: re-exports the full compile-time DVS reproduction API.
//!
//! Each subsystem is reachable as a module (`compiler`, `sim`, ...); the
//! [`prelude`] flattens the handful of cross-crate types almost every user
//! touches into one import.
pub mod bench_replay;
pub mod bench_solver;

pub use dvs_cert as cert;
pub use dvs_check as check;
pub use dvs_compiler as compiler;
pub use dvs_ir as ir;
pub use dvs_milp as milp;
pub use dvs_model as model;
pub use dvs_obs as obs;
pub use dvs_replay as replay;
pub use dvs_runtime as runtime;
pub use dvs_serve as serve;
pub use dvs_sim as sim;
pub use dvs_verify as verify;
pub use dvs_vf as vf;
pub use dvs_workloads as workloads;

/// The commonly-used cross-crate surface in one import:
///
/// ```
/// use compile_time_dvs::prelude::*;
///
/// let compiler = DvsCompiler::builder(
///     Machine::paper_default(),
///     VoltageLadder::xscale3(&AlphaPower::paper()),
///     TransitionModel::with_capacitance_uf(0.05),
/// )
/// .build()
/// .unwrap();
/// let _ = compiler.ladder();
/// ```
pub mod prelude {
    pub use dvs_check::{run_check, CheckConfig, CheckReport, Tolerances};
    pub use dvs_compiler::{
        analyze_params, baseline, CompileResult, CompilerBuilder, DeadlineScheme, DvsCompiler,
        MilpFormulation, PassError,
    };
    pub use dvs_ir::{Cfg, CfgBuilder, Inst, MemWidth, Opcode, Profile, Reg};
    pub use dvs_model::{ContinuousModel, DiscreteModel, ProgramParams};
    pub use dvs_sim::{EdgeSchedule, Machine, ModeProfiler, Trace, TraceBuilder};
    pub use dvs_verify::{verify, VerifyInput, VerifyReport};
    pub use dvs_vf::{AlphaPower, ModeId, OperatingPoint, TransitionModel, VoltageLadder};
    pub use dvs_workloads::Benchmark;
}
