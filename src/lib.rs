//! Facade crate: re-exports the full compile-time DVS reproduction API.
pub use dvs_compiler as compiler;
pub use dvs_ir as ir;
pub use dvs_milp as milp;
pub use dvs_model as model;
pub use dvs_obs as obs;
pub use dvs_sim as sim;
pub use dvs_vf as vf;
pub use dvs_workloads as workloads;
