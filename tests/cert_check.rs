//! Integration tests for optimality certificates: every synthetic
//! MediaBench workload must certify clean end to end, seeded corruptions
//! of real certificates must each be rejected with their expected code,
//! and the encoded proof must be byte-identical regardless of how many
//! solver threads produced the solution it certifies.

use compile_time_dvs::cert::{Certificate, RejectCode};
use compile_time_dvs::check::{gen_cfg, gen_trace, DeadlineSpec, Gen, Mutation};
use compile_time_dvs::compiler::MilpFormulation;
use compile_time_dvs::prelude::*;
use compile_time_dvs::sim::ModeProfiler;

fn ladder() -> VoltageLadder {
    VoltageLadder::xscale3(&AlphaPower::paper())
}

/// Compile every benchmark with certification on at a mid-range deadline;
/// each compile must yield a checker-accepted, byte-stable certificate.
/// (A rejected certificate aborts the compile with `PassError::Certify`,
/// so reaching a `CompileResult` at all means the checker said yes — the
/// assertions below just make that chain visible.)
#[test]
fn all_workloads_certify_clean() {
    let machine = Machine::paper_default();
    for b in Benchmark::all() {
        let cfg = b.build_cfg();
        let trace = b.trace(&cfg, &b.default_input());
        let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
        let compiler = DvsCompiler::builder(
            machine.clone(),
            ladder(),
            TransitionModel::with_capacitance_uf(0.05),
        )
        .certify(true)
        .build()
        .expect("valid compiler settings");
        let (profile, _) = compiler.profile(&cfg, &trace);
        let deadline = scheme.deadline_us(3);
        let res = compiler
            .compile(&cfg, &profile, deadline)
            .unwrap_or_else(|e| panic!("{}: certifying compile failed: {e}", b.name()));
        let cert = res
            .milp
            .certificate
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no certificate produced", b.name()));
        assert!(
            cert.report.reject.is_none(),
            "{}: checker rejected the certificate: {:?}",
            b.name(),
            cert.report.reject
        );
        let decoded = Certificate::decode(&cert.encoded)
            .unwrap_or_else(|e| panic!("{}: certificate decode failed: {e}", b.name()));
        assert_eq!(
            decoded.encode(),
            cert.encoded,
            "{}: certificate round trip is not byte-stable",
            b.name()
        );
        assert!(
            dvs_cert_accepts(&decoded),
            "{}: re-decoded certificate no longer checks",
            b.name()
        );
    }
}

fn dvs_cert_accepts(cert: &Certificate) -> bool {
    compile_time_dvs::cert::check(cert).reject.is_none()
}

/// Certify 100 randomly generated models (20 in debug builds — each seed
/// is a full certifying replay; CI's `cert-smoke` job runs this suite in
/// release at full size) and corrupt each certificate with every
/// [`Mutation`] class; the independent checker must reject every
/// corruption, and with the code the class is designed to trip.
#[test]
fn mutation_sweep_rejects_every_class() {
    let seeds: u64 = if cfg!(debug_assertions) { 20 } else { 100 };
    let law = AlphaPower::paper();
    let ladder = VoltageLadder::interpolated(&law, 4).expect("4-level ladder");
    let transition = TransitionModel::with_capacitance_uf(0.05);
    let profiler = ModeProfiler::new(Machine::paper_default());

    let mut certified = 0usize;
    let mut rejected = vec![0usize; Mutation::ALL.len()];
    for seed in 0..seeds {
        let mut g = Gen::from_seed(0xce57 + seed);
        let cfg = gen_cfg(&mut g, 6);
        let trace = gen_trace(&mut g, &cfg);
        let (profile, _) = profiler.profile(&cfg, &trace, &ladder);
        let t_fast = profile.total_time_at(ladder.len() - 1);
        let t_slow = profile.total_time_at(0);
        let deadline_us = DeadlineSpec::SpanFraction(0.5).resolve(t_fast, t_slow);

        let outcome = MilpFormulation::new(&cfg, &profile, &ladder, &transition, deadline_us)
            .with_certify(true)
            .solve()
            .unwrap_or_else(|e| panic!("seed {seed}: certifying solve failed: {e}"));
        let cert = outcome.certificate.expect("certificate requested");
        assert!(
            cert.report.reject.is_none(),
            "seed {seed}: checker rejected: {:?}",
            cert.report.reject
        );
        certified += 1;
        let decoded = Certificate::decode(&cert.encoded).expect("decodable certificate");

        for (i, m) in Mutation::ALL.into_iter().enumerate() {
            let Some(bad) = m.apply(&decoded) else {
                continue; // class not applicable to this certificate's shape
            };
            let report = compile_time_dvs::cert::check(&bad);
            let reject = report.reject.unwrap_or_else(|| {
                panic!("seed {seed}: checker accepted a {} corruption", m.name())
            });
            assert!(
                m.expected().contains(&reject.code),
                "seed {seed}: {} corruption rejected as {} ({}), expected one of {:?}",
                m.name(),
                reject.code,
                reject.detail,
                m.expected().iter().map(|c| c.as_str()).collect::<Vec<_>>()
            );
            rejected[i] += 1;
        }
    }
    assert_eq!(
        certified, seeds as usize,
        "every seed must certify before mutation"
    );
    for (i, m) in Mutation::ALL.into_iter().enumerate() {
        assert!(
            rejected[i] >= seeds as usize / 2,
            "mutation class {} applied to only {}/{seeds} certificates — the \
             sweep is not exercising it",
            m.name(),
            rejected[i]
        );
    }
}

/// The dual-sign reject code must actually appear in the sweep above (it
/// is the one class whose expected code depends on checker internals
/// walking every leaf); pin the code names so a rename shows up here and
/// not just in docs.
#[test]
fn reject_code_names_are_stable() {
    assert_eq!(
        RejectCode::DualSignViolation.as_str(),
        "dual-sign-violation"
    );
    assert_eq!(RejectCode::CoverageGap.as_str(), "coverage-gap");
    assert_eq!(
        RejectCode::IncumbentInfeasible.as_str(),
        "incumbent-infeasible"
    );
    assert_eq!(
        RejectCode::IncumbentNotIntegral.as_str(),
        "incumbent-not-integral"
    );
    assert_eq!(RejectCode::ObjectiveMismatch.as_str(), "objective-mismatch");
}

/// The trust boundary in manifest form: the checker crate must never
/// depend on the solver it audits, directly or transitively — otherwise
/// a solver bug could hide in the checker too.
#[test]
fn checker_crate_does_not_depend_on_the_solver() {
    let manifest = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/cert/Cargo.toml"
    ))
    .expect("cert manifest readable");
    let deps: String = manifest
        .lines()
        .skip_while(|l| l.trim() != "[dependencies]")
        .collect();
    assert!(
        !deps.contains("milp"),
        "dvs-cert must not depend on dvs-milp:\n{deps}"
    );
}

/// The certificate depends only on the model and the answer — never on
/// how many worker threads raced to find it. A single-threaded and an
/// 8-way solve of the same model must encode byte-identical proofs.
#[test]
fn certificates_are_byte_identical_across_solver_jobs() {
    let law = AlphaPower::paper();
    let ladder = VoltageLadder::interpolated(&law, 4).expect("4-level ladder");
    let transition = TransitionModel::with_capacitance_uf(0.05);
    let profiler = ModeProfiler::new(Machine::paper_default());

    for seed in 0..8u64 {
        let mut g = Gen::from_seed(0x10b5 + seed);
        let cfg = gen_cfg(&mut g, 6);
        let trace = gen_trace(&mut g, &cfg);
        let (profile, _) = profiler.profile(&cfg, &trace, &ladder);
        let t_fast = profile.total_time_at(ladder.len() - 1);
        let t_slow = profile.total_time_at(0);
        let deadline_us = DeadlineSpec::SpanFraction(0.5).resolve(t_fast, t_slow);

        let solve = |jobs: usize| {
            MilpFormulation::new(&cfg, &profile, &ladder, &transition, deadline_us)
                .with_certify(true)
                .with_solver_jobs(jobs)
                .solve()
                .unwrap_or_else(|e| panic!("seed {seed}: jobs={jobs} solve failed: {e}"))
                .certificate
                .expect("certificate requested")
                .encoded
        };
        assert_eq!(
            solve(1),
            solve(8),
            "seed {seed}: certificate differs between 1 and 8 solver jobs"
        );
    }
}
