//! Seeded differential tests over the whole pipeline: 200 random cases of
//! MILP-vs-brute-force agreement, LP-relaxation and §3 continuous-bound
//! dominance, and simulator replay. See `crates/check` for the framework.

use compile_time_dvs::check::{run_check, CheckConfig, Counterexample, OracleKind, Tolerances};

fn env_jobs() -> usize {
    std::env::var(compile_time_dvs::runtime::JOBS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or(4)
}

/// The PR's headline property: across 200 seeded random programs, every
/// oracle agrees with the MILP — brute-force enumeration finds the same
/// optimum and the same feasibility verdict, the LP relaxation and the
/// continuous analytical model stay below the integral objective, and the
/// emitted schedule replays within tolerance on the simulator. CFGs are
/// capped at 6 blocks so brute force is never skipped: every feasible case
/// really is checked against exhaustive enumeration.
#[test]
fn two_hundred_seeded_cases_agree_with_every_oracle() {
    let config = CheckConfig {
        seeds: 200,
        seed_base: 42,
        max_blocks: 6,
        jobs: env_jobs(),
        ..CheckConfig::default()
    };
    let report = run_check(&config, &Tolerances::default());
    assert!(report.ok(), "oracle disagreements:\n{}", report.render());
    assert_eq!(
        report.brute_force_skipped, 0,
        "6-block cases must stay within the brute-force budget"
    );
    assert!(
        report.feasible > 0 && report.infeasible > 0,
        "the seed range must exercise both feasibility verdicts \
         (feasible {}, infeasible {})",
        report.feasible,
        report.infeasible
    );
}

/// The rendered report must not depend on worker count: the runtime pool
/// returns case outcomes in seed order and the report carries no timings.
#[test]
fn report_bytes_do_not_depend_on_worker_count() {
    let base = CheckConfig {
        seeds: 64,
        seed_base: 42,
        max_blocks: 6,
        jobs: 1,
        ..CheckConfig::default()
    };
    let sequential = run_check(&base, &Tolerances::default());
    let parallel = run_check(
        &CheckConfig {
            jobs: 4,
            ..base.clone()
        },
        &Tolerances::default(),
    );
    assert_eq!(sequential.render(), parallel.render());
}

/// A repro artifact must say *which* differential oracle tripped: the
/// command line alone reproduces the case, and the trailing annotation
/// tells the developer which comparison to look at — without it, a saved
/// `--repro-out` file from CI is ambiguous across five oracles.
#[test]
fn repro_lines_record_the_failing_oracle() {
    for (oracle, wire) in [
        (OracleKind::BruteForce, "brute-force"),
        (OracleKind::SimReplay, "sim-replay"),
        (OracleKind::BytecodeReplay, "bytecode-replay"),
    ] {
        let cx = Counterexample {
            seed: 1234,
            oracle,
            detail: "energy mismatch".to_string(),
            original_tape_len: 40,
            shrunk_tape_len: 8,
            shrunk_blocks: 3,
            shrunk_edges: 3,
            shrunk_detail: "energy mismatch".to_string(),
            shrunk_tape: vec![0; 8],
        };
        let line = cx.repro(6);
        assert_eq!(
            line,
            format!("dvsc check --seeds 1 --seed-base 1234 --max-blocks 6  # oracle: {wire}"),
        );
        let (cmd, annotation) = line.split_once('#').expect("annotated repro line");
        assert!(
            !cmd.contains('#') && annotation.trim() == format!("oracle: {wire}"),
            "the oracle must ride in a trailing comment so the command part \
             stays directly runnable: {line}"
        );
    }
}
