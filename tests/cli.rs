//! Integration tests for the `dvsc` command-line front end.

use std::process::Command;

fn dvsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dvsc"))
}

#[test]
fn list_names_all_benchmarks() {
    let out = dvsc().arg("list").output().expect("dvsc runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "adpcm/encode",
        "mpeg/decode",
        "gsm/encode",
        "epic",
        "ghostscript",
        "mpg123",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    assert!(text.contains("flwr.m2v"), "mpeg inputs listed");
}

#[test]
fn compile_ghostscript_and_emit_listing() {
    let tmp = std::env::temp_dir().join("dvsc_cli_test_listing.s");
    let _ = std::fs::remove_file(&tmp);
    let out = dvsc()
        .args([
            "compile",
            "--benchmark",
            "ghostscript",
            "--deadline",
            "4",
            "--capacitance",
            "0.01",
            "--emit",
        ])
        .arg(&tmp)
        .output()
        .expect("dvsc runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("MILP:"), "summary printed:\n{text}");
    assert!(text.contains("validated:"), "validation printed");
    let listing = std::fs::read_to_string(&tmp).expect("listing written");
    assert!(listing.contains("; program: ghostscript"));
    assert!(listing.contains("band_head:"));
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn analyze_prints_bounds() {
    let out = dvsc()
        .args(["analyze", "--benchmark", "gsm", "--levels", "7"])
        .output()
        .expect("dvsc runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Noverlap="));
    assert!(text.contains("D5"));
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = dvsc().args(["compile"]).output().expect("dvsc runs");
    assert!(!out.status.success());
    let out = dvsc()
        .args(["compile", "--benchmark", "nonexistent"])
        .output()
        .expect("dvsc runs");
    assert!(!out.status.success());
    let out = dvsc().args(["frobnicate"]).output().expect("dvsc runs");
    assert!(!out.status.success());
}

#[test]
fn argument_errors_name_the_failing_flag() {
    // Missing value.
    let out = dvsc()
        .args(["compile", "--deadline"])
        .output()
        .expect("dvsc runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--deadline requires a value"), "stderr: {err}");

    // Unparseable value.
    let out = dvsc()
        .args(["compile", "--levels", "three"])
        .output()
        .expect("dvsc runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--levels") && err.contains("`three`"),
        "stderr: {err}"
    );

    // Unknown flag.
    let out = dvsc()
        .args(["compile", "--bogus"])
        .output()
        .expect("dvsc runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag `--bogus`"), "stderr: {err}");
}

#[test]
fn version_flag_prints_version() {
    let out = dvsc().arg("--version").output().expect("dvsc runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.starts_with("dvsc ") && text.trim().len() > 5,
        "got: {text}"
    );
}

/// The observability acceptance path: flags without a subcommand imply
/// `compile`, `--metrics` prints non-zero pipeline counters, and
/// `--trace-out` writes a Chrome-trace JSON file.
#[test]
fn metrics_and_trace_out_capture_the_pipeline() {
    use compile_time_dvs::obs::json::Json;

    let tmp = std::env::temp_dir().join("dvsc_cli_test_trace.json");
    let _ = std::fs::remove_file(&tmp);
    let out = dvsc()
        .args([
            "--benchmark",
            "adpcm",
            "--deadline",
            "2",
            "--metrics",
            "--trace-out",
        ])
        .arg(&tmp)
        .output()
        .expect("dvsc runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);

    // The metrics summary must report non-zero work in every stage.
    let metric_value = |name: &str| -> f64 {
        let line = text
            .lines()
            .find(|l| l.trim_start().starts_with(name))
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"));
        line.split_whitespace().nth(1).unwrap().parse().unwrap()
    };
    assert!(metric_value("milp.pivots") > 0.0);
    assert!(metric_value("sim.cycles") > 0.0);
    assert!(metric_value("pass.solve.wall_us") > 0.0);
    assert!(metric_value("pass.profile.wall_us") > 0.0);

    // The trace must be a JSON array of complete events.
    let trace = std::fs::read_to_string(&tmp).expect("trace written");
    let root = Json::parse(&trace).expect("trace is valid JSON");
    let events = root.as_arr().expect("array of events");
    assert!(!events.is_empty());
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "missing {key} in {trace}");
        }
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
    }
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for span in ["sim.run", "pass.formulate", "pass.solve", "milp.solve"] {
        assert!(names.contains(&span), "span {span} missing: {names:?}");
    }
    let _ = std::fs::remove_file(&tmp);
}

/// `verify` over a single benchmark prints an ok row and exits 0 even
/// under `--deny`; `--json` emits a machine-readable report and `--dot`
/// writes a mode-colored overlay.
#[test]
fn verify_subcommand_reports_clean_schedules() {
    use compile_time_dvs::obs::json::Json;

    let tmp = std::env::temp_dir().join("dvsc_cli_test_verify.dot");
    let _ = std::fs::remove_file(&tmp);
    let out = dvsc()
        .args([
            "verify",
            "--benchmark",
            "ghostscript",
            "--deny",
            "--json",
            "--dot",
        ])
        .arg(&tmp)
        .output()
        .expect("dvsc runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let root = Json::parse(&text).expect("verify --json output parses");
    assert_eq!(root.get("denied").and_then(Json::as_bool), Some(false));
    let rows = root.get("benchmarks").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 1);
    let report = rows[0].get("report").expect("report object");
    assert_eq!(report.get("errors").and_then(Json::as_f64), Some(0.0));
    assert!(
        report
            .get("modeled_time_us")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    let wcet = report
        .get("wcet")
        .and_then(|w| w.get("bound_us"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(
        wcet >= report
            .get("modeled_time_us")
            .and_then(Json::as_f64)
            .unwrap()
    );

    let dot = std::fs::read_to_string(&tmp).expect("dot overlay written");
    assert!(dot.starts_with("digraph"), "not a dot file: {dot}");
    // Every edge carries its scheduled mode and profile count.
    assert!(
        dot.contains("label=\"m"),
        "overlay lacks mode labels:\n{dot}"
    );
    assert!(
        dot.contains("\u{d7}"),
        "overlay lacks profile counts:\n{dot}"
    );
    assert!(
        dot.contains("fillcolor"),
        "overlay lacks mode coloring:\n{dot}"
    );
    let _ = std::fs::remove_file(&tmp);
}

/// A seeded slow-down mutation at the tightest deadline must be flagged,
/// and `--deny` must turn that into a nonzero exit.
#[test]
fn verify_mutation_is_denied() {
    let out = dvsc()
        .args([
            "verify",
            "--benchmark",
            "adpcm",
            "--deadline",
            "1",
            "--mutate",
            "1",
            "--deny",
        ])
        .output()
        .expect("dvsc runs");
    assert!(
        !out.status.success(),
        "mutated schedule must be denied; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "no FAIL row in:\n{text}");
    assert!(
        text.contains("mutated edge"),
        "mutation note missing:\n{text}"
    );
    assert!(text.contains("error[V"), "no V-coded error in:\n{text}");
}

/// The global `--timeout` flag: bad values fail with a precise message
/// and the usual exit code 2, an expired watchdog exits 3 with a named
/// label, and a generous budget leaves the run untouched.
#[test]
fn global_timeout_flag_is_validated_and_enforced() {
    // Missing value.
    let out = dvsc()
        .args(["compile", "--timeout"])
        .output()
        .expect("dvsc runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--timeout requires a value"), "stderr: {err}");

    // Unparseable value.
    let out = dvsc()
        .args(["compile", "--timeout", "soon"])
        .output()
        .expect("dvsc runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--timeout") && err.contains("`soon`"),
        "stderr: {err}"
    );

    // Non-positive values.
    for bad in ["0", "-1.5"] {
        let out = dvsc()
            .args(["compile", "--timeout", bad])
            .output()
            .expect("dvsc runs");
        assert_eq!(out.status.code(), Some(2), "--timeout {bad} accepted");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--timeout must be positive"), "stderr: {err}");
    }

    // An expired budget aborts with exit 3 and names the command.
    let out = dvsc()
        .args(["compile", "--benchmark", "epic", "--timeout", "0.001"])
        .output()
        .expect("dvsc runs");
    assert_eq!(out.status.code(), Some(3), "watchdog must exit 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("compile timed out after"), "stderr: {err}");

    // A generous budget is invisible.
    let out = dvsc()
        .args(["compile", "--benchmark", "ghostscript", "--timeout", "300"])
        .output()
        .expect("dvsc runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The serve-side flags reject nonsensical values before any socket work.
#[test]
fn serve_flags_are_validated() {
    for (args, needle) in [
        (
            vec!["loadtest", "--clients", "0"],
            "--clients must be at least 1",
        ),
        (
            vec!["loadtest", "--requests", "0"],
            "--requests must be at least 1",
        ),
        (vec!["client"], "client requires an operation"),
        (
            vec!["serve", "--queue-depth"],
            "--queue-depth requires a value",
        ),
    ] {
        let out = dvsc().args(&args).output().expect("dvsc runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?} accepted");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "args {args:?} stderr: {err}");
    }
}

/// Without a benchmark filter, `verify` fans out over every bundled
/// workload and prints one row each.
#[test]
fn verify_covers_all_benchmarks() {
    let out = dvsc().args(["verify"]).output().expect("dvsc runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["adpcm", "mpeg", "gsm", "epic", "ghostscript", "mpg123"] {
        assert!(
            text.lines().any(|l| l.contains(name) && l.contains("ok")),
            "no ok row for {name} in:\n{text}"
        );
    }
}
