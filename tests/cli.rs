//! Integration tests for the `dvsc` command-line front end.

use std::process::Command;

fn dvsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dvsc"))
}

#[test]
fn list_names_all_benchmarks() {
    let out = dvsc().arg("list").output().expect("dvsc runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["adpcm/encode", "mpeg/decode", "gsm/encode", "epic", "ghostscript", "mpg123"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    assert!(text.contains("flwr.m2v"), "mpeg inputs listed");
}

#[test]
fn compile_ghostscript_and_emit_listing() {
    let tmp = std::env::temp_dir().join("dvsc_cli_test_listing.s");
    let _ = std::fs::remove_file(&tmp);
    let out = dvsc()
        .args([
            "compile",
            "--benchmark",
            "ghostscript",
            "--deadline",
            "4",
            "--capacitance",
            "0.01",
            "--emit",
        ])
        .arg(&tmp)
        .output()
        .expect("dvsc runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(text.contains("MILP:"), "summary printed:\n{text}");
    assert!(text.contains("validated:"), "validation printed");
    let listing = std::fs::read_to_string(&tmp).expect("listing written");
    assert!(listing.contains("; program: ghostscript"));
    assert!(listing.contains("band_head:"));
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn analyze_prints_bounds() {
    let out = dvsc()
        .args(["analyze", "--benchmark", "gsm", "--levels", "7"])
        .output()
        .expect("dvsc runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Noverlap="));
    assert!(text.contains("D5"));
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = dvsc().args(["compile"]).output().expect("dvsc runs");
    assert!(!out.status.success());
    let out = dvsc()
        .args(["compile", "--benchmark", "nonexistent"])
        .output()
        .expect("dvsc runs");
    assert!(!out.status.success());
    let out = dvsc().args(["frobnicate"]).output().expect("dvsc runs");
    assert!(!out.status.success());
}
