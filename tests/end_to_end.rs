//! End-to-end integration tests: the full profile → filter → MILP →
//! schedule → re-simulate pipeline over the synthetic MediaBench suite.

use compile_time_dvs::prelude::*;

fn ladder() -> VoltageLadder {
    VoltageLadder::xscale3(&AlphaPower::paper())
}

/// For every benchmark and every feasible deadline: the MILP must meet its
/// deadline (both predicted and re-simulated, with a small modelling
/// tolerance) and never use more energy than the best single mode.
#[test]
fn pipeline_meets_deadlines_and_beats_single_mode() {
    let machine = Machine::paper_default();
    for b in [
        Benchmark::GsmEncode,
        Benchmark::Ghostscript,
        Benchmark::Mpg123,
    ] {
        let cfg = b.build_cfg();
        let trace = b.trace(&cfg, &b.default_input());
        let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
        let compiler = DvsCompiler::builder(
            machine.clone(),
            ladder(),
            TransitionModel::with_capacitance_uf(0.05),
        )
        .build()
        .expect("valid compiler settings");
        let (profile, _) = compiler.profile(&cfg, &trace);
        for i in 1..=5usize {
            let deadline = scheme.deadline_us(i);
            let Ok(res) = compiler.compile_and_validate(&cfg, &trace, &profile, deadline) else {
                // D1 can be genuinely tight; other deadlines must be
                // feasible by construction.
                assert_eq!(i, 1, "{}: D{i} unexpectedly infeasible", b.name());
                continue;
            };
            assert!(
                res.milp.predicted_time_us <= deadline * (1.0 + 1e-9),
                "{} D{i}: predicted time {} over deadline {deadline}",
                b.name(),
                res.milp.predicted_time_us
            );
            let v = res.validated.expect("validated");
            assert!(
                v.time_us <= deadline * 1.06,
                "{} D{i}: measured {} over deadline {deadline}",
                b.name(),
                v.time_us
            );
            if let Some((_, _, e_single)) = res.single_mode {
                assert!(
                    res.milp.predicted_energy_uj <= e_single * (1.0 + 1e-9),
                    "{} D{i}: MILP {} worse than single mode {e_single}",
                    b.name(),
                    res.milp.predicted_energy_uj
                );
            }
        }
    }
}

/// MILP predictions must agree with simulator measurements within a modest
/// modelling tolerance: the prediction uses per-block averages while the
/// re-execution replays the exact trace.
#[test]
fn milp_predictions_track_resimulation() {
    let machine = Machine::paper_default();
    let b = Benchmark::GsmEncode;
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let compiler = DvsCompiler::builder(
        machine.clone(),
        ladder(),
        TransitionModel::with_capacitance_uf(0.05),
    )
    .build()
    .expect("valid compiler settings");
    let (profile, _) = compiler.profile(&cfg, &trace);
    for i in 2..=5usize {
        let res = compiler
            .compile_and_validate(&cfg, &trace, &profile, scheme.deadline_us(i))
            .expect("feasible");
        let v = res.validated.expect("validated");
        let dt = (v.time_us - res.milp.predicted_time_us).abs() / v.time_us;
        assert!(dt < 0.08, "D{i}: time prediction off by {:.1}%", dt * 100.0);
        let de =
            (v.processor_energy_uj - res.milp.predicted_energy_uj).abs() / v.processor_energy_uj;
        assert!(
            de < 0.08,
            "D{i}: energy prediction off by {:.1}%",
            de * 100.0
        );
    }
}

/// The paper's §6.5 claim: the analytical bound (which ignores switching
/// costs) generally dominates the MILP-achieved savings. We allow the
/// paper's own observed exception margin.
#[test]
fn analytical_bound_dominates_milp_savings() {
    let machine = Machine::paper_default();
    for b in [Benchmark::GsmEncode, Benchmark::MpegDecode] {
        let cfg = b.build_cfg();
        let trace = b.trace(&cfg, &b.default_input());
        let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
        let compiler = DvsCompiler::builder(
            machine.clone(),
            ladder(),
            TransitionModel::with_capacitance_uf(0.05),
        )
        .build()
        .expect("valid compiler settings");
        let (profile, runs) = compiler.profile(&cfg, &trace);
        let params = analyze_params(&runs);
        let model = DiscreteModel::new(ladder());
        for i in 2..=5usize {
            let d = scheme.deadline_us(i);
            let bound = model.savings(&params, d);
            let milp = compiler
                .compile(&cfg, &profile, d)
                .ok()
                .and_then(|r| r.savings_vs_single());
            if let (Some(bound), Some(milp)) = (bound, milp) {
                assert!(
                    milp <= bound + 0.05,
                    "{} D{i}: milp {milp:.3} far above bound {bound:.3}",
                    b.name()
                );
            }
        }
    }
}

/// Validated transition counts must match the schedule analysis's
/// profile-based prediction exactly when validating on the profiled input.
#[test]
fn predicted_transitions_match_measured() {
    let machine = Machine::paper_default();
    let b = Benchmark::Mpg123;
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let compiler = DvsCompiler::builder(
        machine.clone(),
        ladder(),
        TransitionModel::with_capacitance_uf(0.01),
    )
    .build()
    .expect("valid compiler settings");
    let (profile, _) = compiler.profile(&cfg, &trace);
    for i in [4usize, 5] {
        let res = compiler
            .compile_and_validate(&cfg, &trace, &profile, scheme.deadline_us(i))
            .expect("feasible");
        let v = res.validated.expect("validated");
        assert_eq!(
            res.analysis.predicted_dynamic_transitions(),
            v.transitions,
            "D{i}: predicted vs measured transitions"
        );
    }
}

/// Filtering must not break deadlines and must not change energy by more
/// than a fraction of a percent (the paper's Table 3).
#[test]
fn filtering_preserves_quality() {
    use compile_time_dvs::compiler::EdgeFilter;
    let machine = Machine::paper_default();
    let b = Benchmark::GsmEncode;
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let l = ladder();
    let tm = TransitionModel::with_capacitance_uf(0.05);
    let compiler = DvsCompiler::builder(machine, l.clone(), tm)
        .build()
        .expect("valid compiler settings");
    let (profile, _) = compiler.profile(&cfg, &trace);
    let d = scheme.deadline_us(2);
    let tm = TransitionModel::with_capacitance_uf(0.05);
    let all = MilpFormulation::new(&cfg, &profile, &l, &tm, d)
        .with_filter(EdgeFilter::identity(&cfg))
        .solve()
        .expect("feasible");
    let filt = EdgeFilter::tail_rule(&cfg, &profile, l.len() - 1, 0.02);
    assert!(
        filt.num_independent() < cfg.num_edges(),
        "filter should tie something"
    );
    let sub = MilpFormulation::new(&cfg, &profile, &l, &tm, d)
        .with_filter(filt)
        .solve()
        .expect("feasible");
    assert!(sub.predicted_time_us <= d * (1.0 + 1e-9));
    let delta = (sub.predicted_energy_uj - all.predicted_energy_uj) / all.predicted_energy_uj;
    assert!(
        delta.abs() < 0.02,
        "filtering changed energy by {:.2}%",
        delta * 100.0
    );
    assert!(delta >= -1e-9, "filtering cannot improve the optimum");
}
