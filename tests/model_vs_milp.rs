//! Cross-crate consistency between the analytical model, the MILP, and the
//! simulator on hand-built programs with known structure.

use compile_time_dvs::prelude::*;

fn two_phase(mem_iters: u64, comp_iters: u64) -> (Cfg, Trace) {
    let mut b = CfgBuilder::new("two-phase");
    let e = b.block("entry");
    let mem = b.block("mem");
    let comp = b.block("comp");
    let x = b.block("exit");
    // Four independent missing loads per iteration: they pipeline through
    // the single DRAM channel, so the block's wall time is dominated by
    // serialized (frequency-invariant) service — the canonical
    // "slow it down for free" region.
    for i in 0..4 {
        b.push(mem, Inst::load(Reg(1 + i), Reg(10), MemWidth::B4));
    }
    b.push(mem, Inst::branch(Reg(1)));
    for _ in 0..10 {
        b.push(comp, Inst::alu(Opcode::IntAlu, Reg(4), &[Reg(4)]));
    }
    b.push(comp, Inst::branch(Reg(4)));
    b.edge(e, mem);
    b.edge(mem, mem);
    b.edge(mem, comp);
    b.edge(comp, comp);
    b.edge(comp, x);
    let cfg = b.finish(e, x).expect("valid cfg");
    let mut tb = TraceBuilder::new(&cfg);
    let (e, mem, comp, x) = (
        cfg.entry(),
        cfg.block_by_label("mem").expect("mem"),
        cfg.block_by_label("comp").expect("comp"),
        cfg.exit(),
    );
    tb.step(e, vec![]);
    for i in 0..mem_iters {
        let base = 0x20_0000 + i * 4 * 4096;
        tb.step(mem, (0..4).map(|k| base + k * 4096).collect());
    }
    for _ in 0..comp_iters {
        tb.step(comp, vec![]);
    }
    tb.step(x, vec![]);
    let t = tb.finish().expect("valid trace");
    (cfg, t)
}

fn compiler(cap_uf: f64) -> DvsCompiler {
    DvsCompiler::builder(
        Machine::paper_default(),
        VoltageLadder::xscale3(&AlphaPower::paper()),
        TransitionModel::with_capacitance_uf(cap_uf),
    )
    .build()
    .expect("valid compiler settings")
}

/// With free transitions and a deadline between the all-fast and all-slow
/// runtimes, the MILP must place the memory phase at a *slower* mode than
/// the compute phase — the structural prediction of the analytical model
/// (slow down what memory hides). This needs memory slow enough that the
/// pointer chase's wall time is dominated by the frequency-invariant DRAM
/// service rather than by clocked cache lookups, so the machine uses 320 ns
/// memory here.
#[test]
fn memory_phase_runs_slower_than_compute_phase() {
    use compile_time_dvs::sim::{EnergyModel, SimConfig};
    let (cfg, trace) = two_phase(500, 500);
    let machine = Machine::new(
        SimConfig {
            mem_latency_us: 0.32,
            ..SimConfig::default()
        },
        EnergyModel::default(),
    );
    let c = DvsCompiler::builder(
        machine,
        VoltageLadder::xscale3(&AlphaPower::paper()),
        TransitionModel::with_capacitance_uf(0.001),
    )
    .build()
    .expect("valid compiler settings");
    let (profile, runs) = c.profile(&cfg, &trace);
    let t_fast = runs.last().expect("runs").total_time_us;
    let t_slow = runs[0].total_time_us;
    let res = c
        .compile(&cfg, &profile, t_fast + 0.35 * (t_slow - t_fast))
        .expect("feasible");
    let mem = cfg.block_by_label("mem").expect("mem");
    let comp = cfg.block_by_label("comp").expect("comp");
    let mem_mode =
        res.milp.schedule.edge_modes[cfg.edge_between(mem, mem).expect("self edge").index()];
    let comp_mode =
        res.milp.schedule.edge_modes[cfg.edge_between(comp, comp).expect("self edge").index()];
    assert!(
        mem_mode < comp_mode,
        "memory loop at {mem_mode:?} should run slower than compute loop at {comp_mode:?}"
    );
    assert!(res.savings_vs_single().expect("single feasible") > 0.0);
}

/// Tightening the deadline can only increase the optimal energy.
#[test]
fn energy_is_monotone_in_deadline() {
    let (cfg, trace) = two_phase(300, 600);
    let c = compiler(0.01);
    let (profile, runs) = c.profile(&cfg, &trace);
    let t_fast = runs.last().expect("runs").total_time_us;
    let t_slow = runs[0].total_time_us;
    let mut prev = f64::INFINITY;
    for k in 1..=6 {
        let d = t_fast + (t_slow - t_fast) * f64::from(k) / 6.0;
        let res = c.compile(&cfg, &profile, d).expect("feasible");
        assert!(
            res.milp.predicted_energy_uj <= prev + 1e-9,
            "deadline {d}: energy went up"
        );
        prev = res.milp.predicted_energy_uj;
    }
}

/// Raising transition costs can only increase the optimum.
#[test]
fn energy_is_monotone_in_transition_cost() {
    let (cfg, trace) = two_phase(400, 400);
    let probe = compiler(0.01);
    let (profile, runs) = probe.profile(&cfg, &trace);
    let t_fast = runs.last().expect("runs").total_time_us;
    let t_slow = runs[0].total_time_us;
    let d = t_fast + 0.5 * (t_slow - t_fast);
    let mut prev = 0.0;
    for cap in [0.001, 0.01, 0.1, 1.0, 10.0] {
        let c = compiler(cap);
        let res = c.compile(&cfg, &profile, d).expect("feasible");
        assert!(
            res.milp.predicted_energy_uj >= prev - 1e-9,
            "cap {cap}: energy decreased"
        );
        prev = res.milp.predicted_energy_uj;
    }
}

/// A uniform single-mode schedule re-simulated under the scheduled executor
/// must agree exactly with the plain fixed-frequency run — the executor is
/// a strict generalization.
#[test]
fn scheduled_executor_degenerates_to_fixed_runs() {
    use compile_time_dvs::sim::EdgeSchedule;
    let (cfg, trace) = two_phase(200, 300);
    let machine = Machine::paper_default();
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
    for (m, pt) in ladder.iter() {
        let fixed = machine.run(&cfg, &trace, pt);
        let sched = machine.run_scheduled(
            &cfg,
            &trace,
            &ladder,
            &EdgeSchedule::uniform(&cfg, ModeId(m.index())),
            &TransitionModel::free(),
        );
        assert!((fixed.total_time_us - sched.time_us).abs() < 1e-9 * fixed.total_time_us);
        assert!(
            (fixed.processor_energy_uj() - sched.processor_energy_uj).abs()
                < 1e-9 * fixed.processor_energy_uj()
        );
        assert_eq!(sched.transitions, 0);
    }
}
