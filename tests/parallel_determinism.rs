//! The parallel runtime must be invisible in the results: running the
//! experiment harness or `compile_grid` with `--jobs 4` has to produce
//! byte-identical reports and identical chosen schedules to `--jobs 1`.
//! (Timing-column experiments like fig18 are excluded — wall-clock varies
//! run to run even sequentially.)

use compile_time_dvs::prelude::*;
use dvs_bench::{run_experiment, scaled_capacitance_uf, Context};

/// Grid experiments whose cells fan out under `--jobs`: every cell value is
/// a pure function of the (deterministic) profile, so parallelism may not
/// change a single byte of the CSV.
const DETERMINISTIC_GRIDS: &[&str] = &["table1", "fig17", "table5"];

#[test]
fn repro_reports_are_byte_identical_across_jobs() {
    let seq = Context::with_jobs(1);
    let par = Context::with_jobs(4);
    for id in DETERMINISTIC_GRIDS {
        let a = run_experiment(&seq, id).expect("known id");
        let b = run_experiment(&par, id).expect("known id");
        assert_eq!(
            a.to_csv(),
            b.to_csv(),
            "{id}: --jobs 4 changed the report bytes"
        );
        assert_eq!(a.render(), b.render(), "{id}: rendered text diverged");
    }
}

#[test]
fn compile_grid_is_deterministic_across_jobs() {
    let b = Benchmark::Ghostscript;
    let ctx = Context::new();
    let (profile, _) = ctx.profile_of(b, 3);
    let bd = ctx.bench(b);
    let cap = scaled_capacitance_uf(b, bd.scheme.t_slow_us);
    let deadlines: Vec<f64> = (1..=5).map(|i| bd.scheme.deadline_us(i)).collect();

    let grid = |jobs: usize| {
        let comp = DvsCompiler::builder(
            ctx.machine.clone(),
            VoltageLadder::xscale3(&AlphaPower::paper()),
            TransitionModel::with_capacitance_uf(cap),
        )
        .jobs(jobs)
        .build()
        .expect("valid settings");
        comp.compile_grid(&bd.cfg, &profile, &deadlines)
    };

    let seq = grid(1);
    let par = grid(4);
    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        match (s, p) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.milp.schedule,
                    p.milp.schedule,
                    "D{}: chosen schedule differs between jobs=1 and jobs=4",
                    i + 1
                );
                assert_eq!(
                    s.milp.predicted_energy_uj.to_bits(),
                    p.milp.predicted_energy_uj.to_bits(),
                    "D{}: objective differs bit-for-bit",
                    i + 1
                );
            }
            (Err(se), Err(pe)) => assert_eq!(se.to_string(), pe.to_string()),
            _ => panic!("D{}: feasibility differs between jobs=1 and jobs=4", i + 1),
        }
    }
}
