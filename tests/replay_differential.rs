//! Differential fuzzing of the `dvs-replay` bytecode runtime against the
//! cycle-level simulator.
//!
//! Three contracts, mirroring `dvsc check`'s oracle discipline:
//!
//! 1. **Agreement** — over 300 seeded random programs (all generated
//!    ladder shapes and regulator models, on both the paper-default and
//!    the tiny-cache machine so L2 and DRAM paths are exercised), every
//!    replayed schedule matches `Machine::run_scheduled` to 1e-6 relative
//!    on all five result fields plus the exact transition count.
//! 2. **Determinism** — the per-seed result digest is byte-identical
//!    whether the sweep fans out over 1 worker or 4.
//! 3. **Sensitivity** — a seeded off-by-one cost fault injected into the
//!    compiled bytecode is caught by the same 1e-6 comparison, proving
//!    the oracle can actually fail.

use compile_time_dvs::check::{gen_cfg, gen_ladder, gen_trace, gen_transition, Gen};
use compile_time_dvs::ir::Cfg;
use compile_time_dvs::replay;
use compile_time_dvs::runtime::Pool;
use compile_time_dvs::sim::{EdgeSchedule, EnergyModel, Machine, ScheduledRun, SimConfig, Trace};
use compile_time_dvs::vf::{ModeId, TransitionModel, VoltageLadder};

const REL: f64 = 1e-6;
const SEEDS: u64 = 300;

/// One generated case: program, trace, ladder, regulator, machine, and
/// the schedule batch to score (uniform baselines plus random mixes).
struct Case {
    cfg: Cfg,
    trace: Trace,
    ladder: VoltageLadder,
    transition: TransitionModel,
    machine: Machine,
    schedules: Vec<EdgeSchedule>,
}

fn gen_case(seed: u64) -> Case {
    let mut g = Gen::from_seed(seed ^ 0x9e3779b97f4a7c15);
    let cfg = gen_cfg(&mut g, 6);
    let trace = gen_trace(&mut g, &cfg);
    let ladder = gen_ladder(&mut g);
    let transition = gen_transition(&mut g);
    // Odd seeds run the tiny-cache machine so instruction and data
    // accesses regularly spill to L2 and DRAM; even seeds run the
    // paper-default hierarchy.
    let machine = if seed % 2 == 1 {
        Machine::new(SimConfig::tiny_for_tests(), EnergyModel::default())
    } else {
        Machine::paper_default()
    };
    let mut schedules = Vec::new();
    for m in 0..ladder.len() {
        schedules.push(EdgeSchedule::uniform(&cfg, ModeId(m)));
    }
    for _ in 0..4 {
        schedules.push(EdgeSchedule {
            initial: ModeId(g.below(ladder.len() as u64) as usize),
            edge_modes: (0..cfg.num_edges())
                .map(|_| ModeId(g.below(ladder.len() as u64) as usize))
                .collect(),
        });
    }
    Case {
        cfg,
        trace,
        ladder,
        transition,
        machine,
        schedules,
    }
}

/// The 1e-6 five-field comparison the oracle hierarchy standardizes on.
fn disagreements(got: &ScheduledRun, want: &ScheduledRun) -> Vec<String> {
    let mut out = Vec::new();
    for (name, g, w) in [
        ("time_us", got.time_us, want.time_us),
        (
            "processor_energy_uj",
            got.processor_energy_uj,
            want.processor_energy_uj,
        ),
        ("dram_energy_uj", got.dram_energy_uj, want.dram_energy_uj),
        (
            "transition_energy_uj",
            got.transition_energy_uj,
            want.transition_energy_uj,
        ),
        (
            "transition_time_us",
            got.transition_time_us,
            want.transition_time_us,
        ),
    ] {
        if (g - w).abs() > REL * w.abs().max(1e-9) {
            out.push(format!("{name}: bytecode {g:.9} vs simulator {w:.9}"));
        }
    }
    if got.transitions != want.transitions {
        out.push(format!(
            "transitions: bytecode {} vs simulator {}",
            got.transitions, want.transitions
        ));
    }
    out
}

/// Runs one seed and renders a deterministic digest line: every replayed
/// field at full precision, plus any disagreement. The digest is what the
/// jobs-independence test compares byte-for-byte.
fn run_seed(seed: u64) -> String {
    let case = gen_case(seed);
    let code = replay::compile(
        &case.machine,
        &case.cfg,
        &case.trace,
        &case.ladder,
        &case.transition,
    );
    let batch = code.replay_batch(&case.schedules);
    let mut line = format!("seed {seed}:");
    for (i, (schedule, run)) in case.schedules.iter().zip(&batch).enumerate() {
        let sim = case.machine.run_scheduled(
            &case.cfg,
            &case.trace,
            &case.ladder,
            schedule,
            &case.transition,
        );
        line.push_str(&format!(
            " [{i}] t={:.12e} e={:.12e} d={:.12e} n={}",
            run.time_us, run.processor_energy_uj, run.dram_energy_uj, run.transitions
        ));
        for d in disagreements(run, &sim) {
            line.push_str(&format!(" MISMATCH[{i}] {d}"));
        }
    }
    line
}

#[test]
fn three_hundred_seeds_agree_with_the_simulator_to_1e6() {
    let pool = Pool::new(4);
    let digests: Vec<String> = pool.map((0..SEEDS).collect::<Vec<_>>(), |_, s| run_seed(s));
    let failures: Vec<&String> = digests.iter().filter(|d| d.contains("MISMATCH")).collect();
    assert!(
        failures.is_empty(),
        "{} of {SEEDS} seeds disagreed:\n{}",
        failures.len(),
        failures
            .iter()
            .take(5)
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn sweep_digests_are_byte_identical_across_job_counts() {
    // A smaller range keeps this fast; byte-identity is about ordering
    // and rendering, which 40 seeds exercise as well as 300 would.
    let seeds: Vec<u64> = (0..40).collect();
    let serial: Vec<String> = Pool::new(1).map(seeds.clone(), |_, s| run_seed(s));
    let parallel: Vec<String> = Pool::new(4).map(seeds, |_, s| run_seed(s));
    assert_eq!(
        serial.join("\n"),
        parallel.join("\n"),
        "sweep digest depends on the worker count"
    );
}

#[test]
fn injected_bytecode_faults_are_caught_by_the_differential_oracle() {
    for seed in 0..25u64 {
        let case = gen_case(seed);
        let mut code = replay::compile(
            &case.machine,
            &case.cfg,
            &case.trace,
            &case.ladder,
            &case.transition,
        );
        code.inject_cost_fault(seed);
        let caught = case.schedules.iter().any(|schedule| {
            let run = code.replay(schedule);
            let sim = case.machine.run_scheduled(
                &case.cfg,
                &case.trace,
                &case.ladder,
                schedule,
                &case.transition,
            );
            !disagreements(&run, &sim).is_empty()
        });
        assert!(
            caught,
            "seed {seed}: injected off-by-one bytecode cost survived the 1e-6 oracle"
        );
    }
}
