//! End-to-end contract tests for the `dvs-serve` daemon: the cache must
//! be invisible in the results (a warm hit returns byte-identical JSON to
//! a cold solve, which in turn matches a direct in-process compile), the
//! load generator's answers must be independent of concurrency, and the
//! admission-control edges (shed, per-request timeout, bad request) must
//! fail with their documented machine-readable kinds.

use compile_time_dvs::obs::json::Json;
use compile_time_dvs::prelude::*;
use compile_time_dvs::serve::{
    run_loadtest, Client, LoadtestConfig, Request, ServeConfig, Server, SolveOp, SolveRequest,
};
use std::time::{Duration, Instant};

/// Binds a daemon on an ephemeral port and runs it on its own thread.
/// The returned handle resolves once a `shutdown` request drains it.
fn spawn_server(
    mut config: ServeConfig,
) -> (
    String,
    std::thread::JoinHandle<std::io::Result<compile_time_dvs::serve::ServeSummary>>,
) {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server
        .local_addr()
        .expect("bound socket has addr")
        .to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn connect(addr: &str) -> Client {
    Client::connect(addr, Some(Duration::from_secs(120))).expect("connect to test daemon")
}

fn compile_request(benchmark: &str, deadline_index: usize) -> Request {
    Request::Solve(SolveRequest {
        op: SolveOp::Compile,
        benchmark: benchmark.to_string(),
        deadline_index,
        levels: 3,
        capacitance_uf: 0.05,
        solver: "auto".to_string(),
        timeout_ms: None,
        trace_id: None,
    })
}

/// Reproduces the daemon's result body for a compile request with a
/// direct in-process run of the pass — same builder settings, same
/// deadline derivation, same serialization.
fn direct_compile_body(b: Benchmark, deadline_index: usize) -> String {
    let compiler = DvsCompiler::builder(
        Machine::paper_default(),
        VoltageLadder::xscale3(&AlphaPower::paper()),
        TransitionModel::with_capacitance_uf(0.05),
    )
    .validation(true)
    .solver_jobs(1)
    .build()
    .expect("paper-default compiler builds");
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let scheme = DeadlineScheme::measure(compiler.machine(), &cfg, &trace);
    let deadline = scheme.deadline_us(deadline_index);
    let (profile, _) = compiler.profile(&cfg, &trace);
    let result = compiler
        .compile_and_validate(&cfg, &trace, &profile, deadline)
        .expect("bundled workloads compile");
    Json::obj([
        ("benchmark", Json::from(b.name())),
        ("deadline_index", Json::from(deadline_index)),
        ("deadline_us", Json::from(deadline)),
        ("compile", result.to_json()),
    ])
    .dump()
}

/// The core cache contract: for every bundled workload, the cold solve,
/// the warm cache hit, and a direct in-process compile all produce the
/// same result JSON, byte for byte.
#[test]
fn warm_cache_results_are_byte_identical_to_direct_compiles() {
    let (addr, handle) = spawn_server(ServeConfig {
        jobs: 2,
        ..ServeConfig::default()
    });
    let mut client = connect(&addr);
    for b in Benchmark::all() {
        let req = compile_request(b.name(), 3);
        let cold = client.request(&req).expect("cold request");
        assert!(cold.ok, "{}: cold solve failed: {:?}", b.name(), cold.error);
        assert!(
            !cold.cached,
            "{}: first solve claimed a cache hit",
            b.name()
        );
        let warm = client.request(&req).expect("warm request");
        assert!(
            warm.ok,
            "{}: warm request failed: {:?}",
            b.name(),
            warm.error
        );
        assert!(warm.cached, "{}: repeat solve missed the cache", b.name());

        let cold_body = cold.result.expect("cold reply carries result").dump();
        let warm_body = warm.result.expect("warm reply carries result").dump();
        assert_eq!(
            cold_body,
            warm_body,
            "{}: cache hit returned different bytes than the cold solve",
            b.name()
        );
        assert_eq!(
            warm_body,
            direct_compile_body(b, 3),
            "{}: daemon result diverged from a direct in-process compile",
            b.name()
        );
    }
    client
        .request(&Request::Shutdown)
        .expect("graceful shutdown");
    let summary = handle.join().expect("server thread").expect("clean run");
    assert_eq!(summary.shed, 0, "sequential requests must never shed");
    assert!(
        summary.cache.hits >= 6,
        "one warm hit per workload expected"
    );
}

/// The point of the cache: a hit must round-trip at least an order of
/// magnitude faster than the cold solve it replaces. Ghostscript is the
/// cheapest bundled workload, so the 10x bound here is the worst case —
/// every other workload clears it by a wider margin.
#[test]
fn cache_hit_roundtrip_is_at_least_10x_faster_than_cold_solve() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut client = connect(&addr);
    let req = compile_request("ghostscript", 3);

    let t0 = Instant::now();
    let cold = client.request(&req).expect("cold request");
    let cold_rtt = t0.elapsed();
    assert!(cold.ok && !cold.cached);

    // Minimum of several warm round-trips rides out scheduler noise.
    let warm_rtt = (0..5)
        .map(|_| {
            let t = Instant::now();
            let warm = client.request(&req).expect("warm request");
            assert!(warm.ok && warm.cached, "repeat request missed the cache");
            t.elapsed()
        })
        .min()
        .expect("five warm samples");

    assert!(
        cold_rtt >= 10 * warm_rtt,
        "cache hit not 10x faster: cold {cold_rtt:?} vs best warm {warm_rtt:?}"
    );
    client
        .request(&Request::Shutdown)
        .expect("graceful shutdown");
    handle.join().expect("server thread").expect("clean run");
}

/// The load generator's request mix is a function of the global index, so
/// the per-index result digests must be identical whatever the client
/// count — and on a warm cache, a repeated mix must be nearly all hits.
#[test]
fn loadtest_results_are_independent_of_client_count() {
    let (addr, handle) = spawn_server(ServeConfig {
        jobs: 2,
        ..ServeConfig::default()
    });
    let config = |clients: usize| LoadtestConfig {
        addr: addr.clone(),
        clients,
        requests: 24,
        benchmark: Some("ghostscript".to_string()),
        ..LoadtestConfig::default()
    };

    let serial = run_loadtest(&config(1)).expect("serial load test");
    let parallel = run_loadtest(&config(8)).expect("parallel load test");

    for report in [&serial, &parallel] {
        assert_eq!(report.completed, 24, "every request must complete");
        assert_eq!(
            report.shed, 0,
            "default queue depth must not shed 24 requests"
        );
        assert_eq!(report.errors, 0);
        assert!(report.digests.iter().all(Option::is_some));
    }
    assert_eq!(
        serial.digests, parallel.digests,
        "per-request results changed with the client count"
    );
    // The serial run already populated the cache's 2 distinct entries, so
    // the repeated mix from 8 clients must be served almost entirely warm.
    assert!(
        parallel.cache_hit_rate >= 0.9,
        "warm repeated mix only hit {:.1}% of the time",
        parallel.cache_hit_rate * 100.0
    );
    client_shutdown(&addr);
    handle.join().expect("server thread").expect("clean run");
}

fn client_shutdown(addr: &str) {
    connect(addr)
        .request(&Request::Shutdown)
        .expect("graceful shutdown");
}

/// Admission control edges: a zero-depth queue sheds cold work with an
/// explicit `busy`, and malformed requests are rejected before admission.
#[test]
fn zero_queue_depth_sheds_and_bad_requests_are_rejected() {
    let (addr, handle) = spawn_server(ServeConfig {
        queue_depth: 0,
        ..ServeConfig::default()
    });
    let mut client = connect(&addr);

    let shed = client
        .request(&compile_request("ghostscript", 3))
        .expect("shed reply still arrives");
    assert!(!shed.ok);
    assert_eq!(shed.kind.as_deref(), Some("busy"), "shed must say busy");

    let bad = client
        .request(&compile_request("no-such-benchmark", 3))
        .expect("bad-request reply still arrives");
    assert!(!bad.ok);
    assert_eq!(bad.kind.as_deref(), Some("bad_request"));

    let stats = client.request(&Request::Stats).expect("stats");
    let shed_count = stats
        .result
        .as_ref()
        .and_then(|r| r.get("counters"))
        .and_then(|c| c.get("shed"))
        .and_then(Json::as_u64)
        .expect("stats carries counters.shed");
    assert!(shed_count >= 1, "shed counter must record the busy reply");

    client
        .request(&Request::Shutdown)
        .expect("graceful shutdown");
    let summary = handle.join().expect("server thread").expect("clean run");
    assert!(summary.shed >= 1);
}

/// A per-request deadline abandons the wait with kind `timeout`; the
/// solve still completes in the background and populates the cache, so a
/// retry without a deadline is served warm.
#[test]
fn per_request_timeout_abandons_wait_but_populates_cache() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut client = connect(&addr);

    let hurried = client
        .request(&Request::Solve(SolveRequest {
            timeout_ms: Some(1),
            ..solve_request_fields("mpg123", 3)
        }))
        .expect("timeout reply still arrives");
    assert!(!hurried.ok, "a 1 ms deadline cannot cover a cold solve");
    assert_eq!(hurried.kind.as_deref(), Some("timeout"));

    // The abandoned solve finishes in the background; the patient retry
    // must be a cache hit.
    let retry = client
        .request(&compile_request("mpg123", 3))
        .expect("retry request");
    assert!(retry.ok, "retry failed: {:?}", retry.error);
    assert!(
        retry.cached || {
            // The retry may race the background solve's cache insert and
            // coalesce onto it instead; either way a further request is warm.
            let third = client
                .request(&compile_request("mpg123", 3))
                .expect("third");
            third.ok && third.cached
        },
        "timed-out solve never populated the cache"
    );

    client
        .request(&Request::Shutdown)
        .expect("graceful shutdown");
    let summary = handle.join().expect("server thread").expect("clean run");
    assert!(
        summary.timeouts >= 1,
        "timeout counter must record the abandon"
    );
}

/// The `evaluate` op scores the emitted schedule through the bytecode
/// fast path: results carry measured time/energy plus the bytecode shape,
/// repeats are cache hits, and requests differing only in deadline share
/// one compiled bytecode (identical shape counters prove it was the same
/// trace compilation).
#[test]
fn evaluate_scores_schedules_and_shares_bytecode_across_deadlines() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let mut client = connect(&addr);
    let mut shapes = Vec::new();
    for deadline_index in [2, 4] {
        let req = Request::Solve(SolveRequest {
            op: SolveOp::Evaluate,
            ..solve_request_fields("ghostscript", deadline_index)
        });
        let cold = client.request(&req).expect("evaluate request");
        assert!(cold.ok, "evaluate failed: {:?}", cold.error);
        let body = cold.result.expect("evaluate reply carries result");
        let eval = body.get("evaluate").expect("result has `evaluate` object");
        let time = eval
            .get("time_us")
            .and_then(Json::as_f64)
            .expect("measured time");
        assert!(time > 0.0, "replayed time must be positive");
        assert!(
            eval.get("processor_energy_uj")
                .and_then(Json::as_f64)
                .expect("processor energy")
                > 0.0
        );
        assert!(eval.get("predicted_energy_uj").is_some());
        let shape = eval.get("bytecode").expect("bytecode stats").dump();
        assert!(
            eval.get("bytecode")
                .and_then(|s| s.get("trace_insts"))
                .and_then(Json::as_u64)
                .expect("trace_insts")
                > 0
        );
        shapes.push(shape);

        let warm = client.request(&req).expect("warm evaluate");
        assert!(warm.ok && warm.cached, "repeat evaluate missed the cache");
        assert_eq!(
            warm.result.expect("warm result").dump(),
            body.dump(),
            "cached evaluate returned different bytes"
        );
    }
    assert_eq!(
        shapes[0], shapes[1],
        "deadlines 2 and 4 must share one compiled bytecode"
    );
    client
        .request(&Request::Shutdown)
        .expect("graceful shutdown");
    handle.join().expect("server thread").expect("clean run");
}

fn solve_request_fields(benchmark: &str, deadline_index: usize) -> SolveRequest {
    SolveRequest {
        op: SolveOp::Compile,
        benchmark: benchmark.to_string(),
        deadline_index,
        levels: 3,
        capacitance_uf: 0.05,
        solver: "auto".to_string(),
        timeout_ms: None,
        trace_id: None,
    }
}
