//! Contract tests for per-request tracing and the pinned solver
//! benchmark: a cold solve's trace tree must show the request passing
//! through admission, the queue and the solver; a warm hit must show the
//! cache short-circuit and *no* solve span; the daemon's trace ring must
//! replay completed trees as Chrome trace events; and the bench-solver
//! search counters must be byte-identical whatever `--jobs` fans the
//! cells out over.

use compile_time_dvs::bench_solver::{deterministic_view, run_bench_solver, BenchSolverConfig};
use compile_time_dvs::obs::json::Json;
use compile_time_dvs::serve::{Client, Request, ServeConfig, Server, SolveOp, SolveRequest};
use std::time::Duration;

fn spawn_server() -> (
    String,
    std::thread::JoinHandle<std::io::Result<compile_time_dvs::serve::ServeSummary>>,
) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server
        .local_addr()
        .expect("bound socket has addr")
        .to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn compile_request(trace_id: Option<u64>) -> Request {
    Request::Solve(SolveRequest {
        op: SolveOp::Compile,
        benchmark: "ghostscript".to_string(),
        deadline_index: 3,
        levels: 3,
        capacitance_uf: 0.05,
        solver: "auto".to_string(),
        timeout_ms: None,
        trace_id,
    })
}

/// Pulls `(id, parent, name, ts_us, dur_us)` rows out of a trace tree.
fn spans_of(tree: &Json) -> Vec<(u64, u64, String, f64, f64)> {
    tree.get("spans")
        .and_then(Json::as_arr)
        .expect("trace tree has spans")
        .iter()
        .map(|s| {
            (
                s.get("id").and_then(Json::as_u64).expect("span id"),
                s.get("parent").and_then(Json::as_u64).expect("span parent"),
                s.get("name")
                    .and_then(Json::as_str)
                    .expect("span name")
                    .to_string(),
                s.get("ts_us").and_then(Json::as_f64).expect("span ts"),
                s.get("dur_us").and_then(Json::as_f64).expect("span dur"),
            )
        })
        .collect()
}

fn names(spans: &[(u64, u64, String, f64, f64)]) -> Vec<&str> {
    spans.iter().map(|(_, _, n, _, _)| n.as_str()).collect()
}

/// A cold solve's trace: root `request` span (id 1, parent 0), with
/// cache-lookup, queue-wait, solve and emit all children of the root,
/// timestamped within the root's duration; the client-chosen trace id
/// round-trips.
#[test]
fn cold_solve_trace_has_queue_and_solve_spans() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(&addr, Some(Duration::from_secs(120))).expect("connect");

    let cold = client
        .request(&compile_request(Some(777)))
        .expect("cold request");
    assert!(cold.ok && !cold.cached);
    let tree = cold.trace.as_ref().expect("cold reply carries a trace");
    assert_eq!(
        tree.get("trace_id").and_then(Json::as_u64),
        Some(777),
        "client-chosen trace id must round-trip"
    );

    let spans = spans_of(tree);
    let got = names(&spans);
    assert_eq!(
        got,
        ["request", "cache-lookup", "queue-wait", "solve", "emit"],
        "cold solve spans out of order or missing"
    );
    let (root_id, root_parent, _, root_ts, root_dur) = spans[0].clone();
    assert_eq!((root_id, root_parent, root_ts), (1, 0, 0.0));
    let mut ids = vec![root_id];
    for (id, parent, name, ts, dur) in &spans[1..] {
        assert_eq!(*parent, root_id, "{name} must be a child of the root");
        assert!(!ids.contains(id), "span ids must be unique");
        ids.push(*id);
        assert!(
            *ts >= 0.0 && ts + dur <= root_dur * 1.001,
            "{name} span exceeds root"
        );
    }

    // Warm hit: cache-hit span, no queue/solve; server-assigned trace id.
    let warm = client
        .request(&compile_request(None))
        .expect("warm request");
    assert!(warm.ok && warm.cached);
    let warm_tree = warm.trace.as_ref().expect("warm reply carries a trace");
    let warm_spans = spans_of(warm_tree);
    assert_eq!(
        names(&warm_spans),
        ["request", "cache-lookup", "cache-hit", "emit"],
        "warm hit must short-circuit at the cache"
    );
    assert!(
        warm_tree.get("trace_id").and_then(Json::as_u64).is_some(),
        "server must assign a trace id when the client sends none"
    );

    // The result bytes are still byte-identical cold vs warm — the trace
    // rides the envelope, never the cached body.
    assert_eq!(
        cold.result.as_ref().map(Json::dump),
        warm.result.as_ref().map(Json::dump),
        "tracing must not perturb the cache's byte-identity contract"
    );

    // The trace ring replays both trees, flattened to Chrome events.
    let ring = client.request(&Request::Traces).expect("traces op");
    assert!(ring.ok);
    let body = ring.result.expect("traces reply carries result");
    assert!(
        body.get("count").and_then(Json::as_u64) >= Some(2),
        "ring must hold both completed traces"
    );
    let chrome = body
        .get("chrome")
        .and_then(Json::as_arr)
        .expect("traces reply carries chrome events");
    assert!(chrome.len() >= 9, "expected both trees' spans as events");
    for ev in chrome {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        assert!(ev.get("dur").and_then(Json::as_f64).is_some());
    }

    client
        .request(&Request::Shutdown)
        .expect("graceful shutdown");
    handle.join().expect("server thread").expect("clean run");
}

/// The solver benchmark's deterministic view (everything except wall
/// clock) must be byte-identical whether cells run sequentially or fanned
/// over four workers — that is what lets CI diff `BENCH_solver.json`
/// counters against the committed baseline.
#[test]
fn bench_solver_counters_are_independent_of_jobs() {
    let quick =
        |jobs| deterministic_view(&run_bench_solver(&BenchSolverConfig { quick: true, jobs }));
    let sequential = quick(1).dump();
    let parallel = quick(4).dump();
    assert_eq!(
        sequential, parallel,
        "bench-solver counters changed with the cell fan-out"
    );
    let report = Json::parse(&sequential).expect("report is valid JSON");
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some("dvs-bench-solver.v1")
    );
    let cases = report
        .get("cases")
        .and_then(Json::as_arr)
        .expect("report has cases");
    assert_eq!(
        cases.len(),
        16,
        "quick grid is 8 coordinates x 2 solver backends"
    );
    let backends: Vec<&str> = cases
        .iter()
        .map(|c| c.get("backend").and_then(Json::as_str).expect("backend"))
        .collect();
    assert_eq!(backends.iter().filter(|b| **b == "bnb").count(), 8);
    assert_eq!(backends.iter().filter(|b| **b == "continuous").count(), 8);
    for case in cases {
        assert!(
            case.get("error").is_none(),
            "bench cell failed: {}",
            case.dump()
        );
        // Continuous cells carry the exact continuous optimum next to the
        // branch-and-bound LP relaxation of the same model; the two
        // backends must agree on continuous ladders to 1e-6.
        if case.get("backend").and_then(Json::as_str) == Some("continuous") {
            let exact = case
                .get("continuous_objective")
                .and_then(Json::as_f64)
                .expect("continuous_objective");
            let lp = case
                .get("bnb_relaxation_objective")
                .and_then(Json::as_f64)
                .expect("bnb_relaxation_objective");
            assert!(
                (exact - lp).abs() <= 1e-6 * exact.abs().max(1.0),
                "backends disagree on a continuous ladder: yds={exact} lp={lp}"
            );
        }
        // Incumbent trajectories are minimization objectives: each new
        // incumbent must improve (or tie) the last.
        let incumbents = case
            .get("stats")
            .and_then(|s| s.get("incumbents"))
            .and_then(Json::as_arr)
            .expect("case stats carry incumbents");
        assert!(!incumbents.is_empty(), "solved case must have an incumbent");
        let objs: Vec<f64> = incumbents
            .iter()
            .map(|i| {
                i.get("objective")
                    .and_then(Json::as_f64)
                    .expect("objective")
            })
            .collect();
        assert!(
            objs.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "incumbent trajectory must be monotone nonincreasing: {objs:?}"
        );
    }
}
