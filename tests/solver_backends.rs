//! Differential tests for the pluggable solver backends: the exact
//! continuous-voltage backend against brute-force enumeration on tiny
//! generated CFGs with dense voltage ladders, and against the
//! branch-and-bound LP relaxation of the same model (the two must agree
//! to 1e-6 on continuous ladders — this is the cross-backend contract
//! the bench validator also enforces on the committed baseline).

use compile_time_dvs::check::{gen_cfg, gen_trace, schedule_cost, DeadlineSpec, Gen};
use compile_time_dvs::compiler::{MilpFormulation, SolverChoice};
use compile_time_dvs::ir::{Cfg, EdgeId, Profile};
use compile_time_dvs::sim::{Machine, ModeProfiler};
use compile_time_dvs::vf::{AlphaPower, ModeId, TransitionModel, VoltageLadder};

/// Exhaustive minimum-energy mode assignment (start group plus every
/// profile-live edge) under the deadline, evaluated with the shared
/// §4.2 cost evaluator. Returns `None` if the enumeration would exceed
/// `limit` assignments; `Some(None)` never occurs because the all-fast
/// assignment is feasible for every deadline the tests use.
fn brute_force_best(
    cfg: &Cfg,
    profile: &Profile,
    ladder: &VoltageLadder,
    transition: &TransitionModel,
    deadline_us: f64,
    limit: u64,
) -> Option<f64> {
    let live: Vec<EdgeId> = cfg
        .edges()
        .filter(|e| profile.edge_count(e.id) > 0)
        .map(|e| e.id)
        .collect();
    let slots = live.len() + 1;
    let n = ladder.len() as u64;
    let mut count: u64 = 1;
    for _ in 0..slots {
        count = count.saturating_mul(n);
        if count > limit {
            return None;
        }
    }
    let mut assign = vec![0usize; slots];
    let mut edge_modes = vec![ModeId(0); cfg.num_edges()];
    let mut best = f64::INFINITY;
    loop {
        for (i, &e) in live.iter().enumerate() {
            edge_modes[e.index()] = ModeId(assign[i + 1]);
        }
        let (energy, time) = schedule_cost(
            cfg,
            profile,
            ladder,
            transition,
            ModeId(assign[0]),
            &edge_modes,
        );
        if time <= deadline_us && energy < best {
            best = energy;
        }
        let mut i = 0;
        loop {
            assign[i] += 1;
            if assign[i] < ladder.len() {
                break;
            }
            assign[i] = 0;
            i += 1;
            if i == slots {
                assert!(best.is_finite(), "all-fast assignment must be feasible");
                return Some(best);
            }
        }
    }
}

/// On transition-free models (pure voltage-ladder MILPs) with dense
/// ladders:
///
/// * branch-and-bound matches exhaustive enumeration of every mode
///   assignment;
/// * the exact continuous backend and the branch-and-bound LP agree on
///   the relaxation to 1e-6, and `Auto` routing picks the same answer;
/// * the continuous optimum lower-bounds the integer optimum, and the
///   continuous backend's rounded incumbent is deadline-feasible and
///   sandwiched between the bound and nothing better than B&B.
#[test]
fn continuous_backend_agrees_with_brute_force_and_bnb_on_dense_ladders() {
    let law = AlphaPower::paper();
    let ladder = VoltageLadder::interpolated(&law, 5).expect("5-level ladder");
    let transition = TransitionModel::free();
    let profiler = ModeProfiler::new(Machine::paper_default());

    let mut enumerated = 0usize;
    for seed in 0..12u64 {
        let mut g = Gen::from_seed(0xd1ff + seed);
        let cfg = gen_cfg(&mut g, 6);
        let trace = gen_trace(&mut g, &cfg);
        let (profile, _) = profiler.profile(&cfg, &trace, &ladder);
        let t_fast = profile.total_time_at(ladder.len() - 1);
        let t_slow = profile.total_time_at(0);
        let deadline_us = DeadlineSpec::SpanFraction(0.45).resolve(t_fast, t_slow);

        let Some(brute) =
            brute_force_best(&cfg, &profile, &ladder, &transition, deadline_us, 300_000)
        else {
            continue; // too many live edges for exhaustive enumeration
        };
        enumerated += 1;

        let formulation = MilpFormulation::new(&cfg, &profile, &ladder, &transition, deadline_us);
        let bnb = formulation.solve().expect("branch-and-bound solves");
        assert!(
            (bnb.predicted_energy_uj - brute).abs() <= 1e-3 + 1e-5 * brute.abs(),
            "seed {seed}: B&B {} vs brute force {brute}",
            bnb.predicted_energy_uj
        );

        let exact = formulation
            .relaxation_bound_via(SolverChoice::Continuous)
            .expect("continuous backend handles the relaxed ladder");
        let lp = formulation
            .relaxation_bound_via(SolverChoice::BranchAndBound)
            .expect("LP solves the relaxation");
        assert!(
            (exact - lp).abs() <= 1e-6 * exact.abs().max(1.0),
            "seed {seed}: backends disagree on the relaxation: yds={exact} lp={lp}"
        );
        let auto = formulation.relaxation_bound().expect("auto relaxation");
        assert!(
            (auto - exact).abs() <= 1e-6 * exact.abs().max(1.0),
            "seed {seed}: auto routing drifted from the exact backend"
        );
        assert!(
            exact <= brute + 1e-6 + 1e-9 * brute.abs(),
            "seed {seed}: continuous optimum {exact} must lower-bound brute force {brute}"
        );

        let rounded = MilpFormulation::new(&cfg, &profile, &ladder, &transition, deadline_us)
            .with_solver(SolverChoice::Continuous)
            .solve()
            .expect("continuous backend rounds to a feasible schedule");
        assert!(
            rounded.predicted_time_us <= deadline_us * (1.0 + 1e-9),
            "seed {seed}: rounded incumbent misses the deadline"
        );
        assert!(
            rounded.predicted_energy_uj >= exact - 1e-6 - 1e-9 * exact.abs(),
            "seed {seed}: rounded incumbent beats the continuous optimum"
        );
        assert!(
            brute <= rounded.predicted_energy_uj + 1e-3 + 1e-5 * brute.abs(),
            "seed {seed}: brute-force optimum must not exceed the rounded incumbent"
        );
    }
    assert!(
        enumerated >= 4,
        "too few cases were small enough to enumerate ({enumerated})"
    );
}
