//! Acceptance tests for the `dvs-verify` static schedule verifier:
//!
//! * a seeded mutation sweep (well over 100 cases) proving that schedules
//!   the shared cost evaluator rejects are flagged by the verifier;
//! * deletion mutants proving that eliding any live mode-set draws a
//!   mode-confluence error;
//! * WCET conservativeness against both the in-model profiled time and
//!   the cycle-level simulator replay on every bundled benchmark;
//! * deadline-verdict agreement with MILP feasibility on small CFGs under
//!   free transitions, where the all-fast schedule is provably
//!   time-optimal.

use compile_time_dvs::check::schedule_cost;
use compile_time_dvs::compiler::{DvsCompiler, MilpFormulation, ScheduleAnalysis};
use compile_time_dvs::ir::{BlockModeCost, Cfg, CfgBuilder, EdgeId, Profile, ProfileBuilder};
use compile_time_dvs::milp::MilpError;
use compile_time_dvs::sim::{EdgeSchedule, Machine, Trace};
use compile_time_dvs::verify::{verify, DiagCode, Severity, VerifyInput};
use compile_time_dvs::vf::{AlphaPower, ModeId, TransitionModel, VoltageLadder};
use compile_time_dvs::workloads::Benchmark;

/// One compiled benchmark cell, ready for verification experiments.
struct Cell {
    cfg: Cfg,
    trace: Trace,
    profile: Profile,
    ladder: VoltageLadder,
    transition: TransitionModel,
    deadline_us: f64,
    schedule: EdgeSchedule,
    analysis: ScheduleAnalysis,
}

fn compile_cell(b: Benchmark, deadline_index: usize) -> Cell {
    let cfg = b.build_cfg();
    let trace = b.trace(&cfg, &b.default_input());
    let machine = Machine::paper_default();
    let scheme = compile_time_dvs::compiler::DeadlineScheme::measure(&machine, &cfg, &trace);
    let deadline_us = scheme.deadline_us(deadline_index);
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
    let transition = TransitionModel::with_capacitance_uf(0.05);
    let compiler = DvsCompiler::builder(machine, ladder.clone(), transition)
        .validation(false)
        .build()
        .expect("valid settings");
    let (profile, _) = compiler.profile(&cfg, &trace);
    let result = compiler
        .compile(&cfg, &profile, deadline_us)
        .unwrap_or_else(|e| panic!("{}: D{deadline_index} compile failed: {e}", b.name()));
    let analysis = ScheduleAnalysis::new(&cfg, &profile, &result.milp.schedule);
    Cell {
        cfg,
        trace,
        profile,
        ladder,
        transition,
        deadline_us,
        schedule: result.milp.schedule,
        analysis,
    }
}

fn verify_cell(cell: &Cell, schedule: &EdgeSchedule, emitted: Option<&[bool]>) -> bool {
    verify(&VerifyInput {
        cfg: &cell.cfg,
        profile: &cell.profile,
        ladder: &cell.ladder,
        transition: &cell.transition,
        schedule,
        emitted,
        deadline_us: Some(cell.deadline_us),
    })
    .ok()
}

/// ≥100 seeded perturbation mutants across three benchmarks at the tight
/// D1 deadline: every mutant the shared §4.2 cost evaluator clearly
/// rejects must be flagged by the verifier (the ISSUE's 99% bar, met at
/// 100% because the verifier's modeled time *is* the evaluator's time).
#[test]
fn seeded_mode_perturbation_mutants_are_caught() {
    let benches = ["adpcm", "gsm", "ghostscript"];
    let mut total = 0u32;
    let mut rejected = 0u32;
    let mut caught = 0u32;
    let mut accepted_clean = 0u32;
    for name in benches {
        let b = Benchmark::all()
            .into_iter()
            .find(|b| b.name().starts_with(name))
            .expect("benchmark exists");
        let cell = compile_cell(b, 1);
        let executed: Vec<EdgeId> = cell
            .cfg
            .edges()
            .filter(|e| cell.profile.edge_count(e.id) > 0)
            .map(|e| e.id)
            .collect();
        for seed in 0..40u64 {
            let pick = executed[(seed as usize) % executed.len()];
            let old = cell.schedule.edge_modes[pick.index()].index();
            // Alternate slow-down/speed-up, bouncing off the ladder ends
            // so every seed yields a genuine mutant.
            let new = if seed % 2 == 0 {
                if old > 0 {
                    old - 1
                } else {
                    old + 1
                }
            } else if old + 1 < cell.ladder.len() {
                old + 1
            } else {
                old - 1
            };
            assert_ne!(new, old);
            let mut mutant = cell.schedule.clone();
            mutant.edge_modes[pick.index()] = ModeId(new);
            let (_, t_mut) = schedule_cost(
                &cell.cfg,
                &cell.profile,
                &cell.ladder,
                &cell.transition,
                mutant.initial,
                &mutant.edge_modes,
            );
            total += 1;
            // Clear rejection: the mutant overshoots the deadline by more
            // than every float tolerance in play.
            if t_mut > cell.deadline_us + 1e-3 {
                rejected += 1;
                if !verify_cell(&cell, &mutant, None) {
                    caught += 1;
                }
            } else if verify_cell(&cell, &mutant, None) {
                accepted_clean += 1;
            }
        }
    }
    assert!(total >= 100, "sweep must cover 100+ mutants, got {total}");
    assert!(
        rejected >= 20,
        "sweep must exercise real deadline misses, got {rejected}/{total}"
    );
    assert!(
        f64::from(caught) >= 0.99 * f64::from(rejected),
        "verifier caught {caught} of {rejected} rejected mutants"
    );
    // Sanity: the sweep is not vacuous in the other direction either —
    // some mutants (e.g. speed-ups) stay feasible and verify clean.
    assert!(accepted_clean > 0, "no mutant survived at all");
}

/// Deleting (eliding) any live mode-set must draw a V001 mode-confluence
/// error: by definition of liveness some executed path reaches the edge
/// in a different mode than it sets.
#[test]
fn deleting_a_live_mode_set_is_caught() {
    let mut live_total = 0u32;
    for b in Benchmark::all() {
        let cell = compile_cell(b, 2);
        let mask = cell.analysis.emitted_mask();
        // The hoisted emission itself is clean.
        assert!(
            verify_cell(&cell, &cell.schedule, Some(&mask)),
            "{}: hoisted schedule must verify",
            b.name()
        );
        for e in cell.cfg.edges() {
            if !mask[e.id.index()] || cell.profile.edge_count(e.id) == 0 {
                continue;
            }
            live_total += 1;
            let mut mutant_mask = mask.clone();
            mutant_mask[e.id.index()] = false;
            let report = verify(&VerifyInput {
                cfg: &cell.cfg,
                profile: &cell.profile,
                ladder: &cell.ladder,
                transition: &cell.transition,
                schedule: &cell.schedule,
                emitted: Some(&mutant_mask),
                deadline_us: None,
            });
            assert!(
                report
                    .errors()
                    .any(|d| d.code == DiagCode::ModeConflict && d.edge == Some(e.id)),
                "{}: eliding live mode-set on {} must be a V001 error, got:\n{}",
                b.name(),
                e.id,
                report.render()
            );
        }
    }
    assert!(
        live_total >= 10,
        "too few live sets exercised: {live_total}"
    );
}

/// The WCET bound dominates the in-model profiled time exactly, and the
/// cycle-level replay within the simulator's cross-block overlap
/// tolerance (the same 15% + 1 µs the differential checker grants).
#[test]
fn wcet_bound_dominates_modeled_and_replayed_time() {
    let machine = Machine::paper_default();
    for b in Benchmark::all() {
        let cell = compile_cell(b, 3);
        let mask = cell.analysis.emitted_mask();
        let report = verify(&VerifyInput {
            cfg: &cell.cfg,
            profile: &cell.profile,
            ladder: &cell.ladder,
            transition: &cell.transition,
            schedule: &cell.schedule,
            emitted: Some(&mask),
            deadline_us: Some(cell.deadline_us),
        });
        assert!(report.ok(), "{}: {}", b.name(), report.render());
        let slack = 1e-6 * report.modeled_time_us.max(1.0);
        assert!(
            report.wcet.bound_us >= report.modeled_time_us - slack,
            "{}: wcet {} < modeled {}",
            b.name(),
            report.wcet.bound_us,
            report.modeled_time_us
        );
        let run = machine.run_scheduled(
            &cell.cfg,
            &cell.trace,
            &cell.ladder,
            &cell.schedule,
            &cell.transition,
        );
        assert!(
            run.time_us <= report.wcet.bound_us * 1.15 + 1.0,
            "{}: replayed {} µs above wcet bound {} µs",
            b.name(),
            run.time_us,
            report.wcet.bound_us
        );
    }
}

/// Small-CFG family with hand-set mode costs for the feasibility
/// agreement test: returns `(cfg, profile)` pairs. Costs are monotone in
/// the mode index (faster mode, less time), so under free transitions the
/// all-fast uniform schedule is time-optimal and MILP feasibility is
/// decided by its modeled time alone.
fn small_cases() -> Vec<(Cfg, Profile)> {
    let costs = |pb: &mut ProfileBuilder, blocks: &[compile_time_dvs::ir::BlockId]| {
        for (i, &blk) in blocks.iter().enumerate() {
            for m in 0..3 {
                let scale = [4.0, 2.0, 1.0][m];
                pb.set_block_cost(
                    blk,
                    m,
                    BlockModeCost {
                        time_us: (1.0 + i as f64) * scale,
                        energy_uj: (1.0 + i as f64) * [1.0, 2.0, 4.5][m],
                    },
                );
            }
        }
    };
    let mut cases = Vec::new();

    // Straight line.
    let mut b = CfgBuilder::new("line");
    let e = b.block("entry");
    let m = b.block("mid");
    let x = b.block("exit");
    b.edge(e, m);
    b.edge(m, x);
    let cfg = b.finish(e, x).unwrap();
    let mut pb = ProfileBuilder::new(&cfg, 3);
    assert!(pb.record_walk(&cfg, &[e, m, x]));
    costs(&mut pb, &[e, m, x]);
    cases.push((cfg, pb.finish()));

    // Diamond with an uneven split.
    let mut b = CfgBuilder::new("diamond");
    let e = b.block("entry");
    let t = b.block("t");
    let f = b.block("f");
    let x = b.block("exit");
    b.edge(e, t);
    b.edge(e, f);
    b.edge(t, x);
    b.edge(f, x);
    let cfg = b.finish(e, x).unwrap();
    let mut pb = ProfileBuilder::new(&cfg, 3);
    for _ in 0..3 {
        assert!(pb.record_walk(&cfg, &[e, t, x]));
    }
    assert!(pb.record_walk(&cfg, &[e, f, x]));
    costs(&mut pb, &[e, t, f, x]);
    cases.push((cfg, pb.finish()));

    // A counted loop.
    let mut b = CfgBuilder::new("loop");
    let e = b.block("entry");
    let h = b.block("head");
    let body = b.block("body");
    let x = b.block("exit");
    b.edge(e, h);
    b.edge(h, body);
    b.edge(body, h);
    b.edge(h, x);
    let cfg = b.finish(e, x).unwrap();
    let mut pb = ProfileBuilder::new(&cfg, 3);
    let mut walk = vec![e];
    for _ in 0..5 {
        walk.push(h);
        walk.push(body);
    }
    walk.push(h);
    walk.push(x);
    assert!(pb.record_walk(&cfg, &walk));
    costs(&mut pb, &[e, h, body, x]);
    cases.push((cfg, pb.finish()));

    cases
}

/// On every small CFG, for deadlines swept well clear of the feasibility
/// boundary, the verifier's verdict on the all-fast schedule agrees with
/// MILP feasibility — and every MILP-produced schedule verifies without a
/// modeled-deadline error.
#[test]
fn deadline_verdicts_agree_with_milp_feasibility_on_small_cfgs() {
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
    let free = TransitionModel::free();
    let mut checked = 0u32;
    for (cfg, profile) in small_cases() {
        let fast = EdgeSchedule::uniform(&cfg, ModeId(2));
        let (_, t_fast) = schedule_cost(
            &cfg,
            &profile,
            &ladder,
            &free,
            fast.initial,
            &fast.edge_modes,
        );
        for mult in [0.4, 0.8, 0.98, 1.02, 1.5, 4.0, 10.0] {
            let deadline = t_fast * mult;
            let report = verify(&VerifyInput {
                cfg: &cfg,
                profile: &profile,
                ladder: &ladder,
                transition: &free,
                schedule: &fast,
                emitted: None,
                deadline_us: Some(deadline),
            });
            let verifier_feasible = !report
                .diagnostics
                .iter()
                .any(|d| d.code == DiagCode::DeadlineModeled);
            let milp = MilpFormulation::new(&cfg, &profile, &ladder, &free, deadline).solve();
            match &milp {
                Ok(outcome) => {
                    assert!(
                        verifier_feasible,
                        "{}: verifier rejects the time-optimal schedule at a \
                         MILP-feasible deadline {deadline}",
                        cfg.name()
                    );
                    // The solved schedule itself must carry no modeled-
                    // deadline error.
                    let r = verify(&VerifyInput {
                        cfg: &cfg,
                        profile: &profile,
                        ladder: &ladder,
                        transition: &free,
                        schedule: &outcome.schedule,
                        emitted: None,
                        deadline_us: Some(deadline),
                    });
                    assert!(
                        !r.errors().any(|d| d.code == DiagCode::DeadlineModeled),
                        "{}: MILP schedule flagged infeasible at {deadline}:\n{}",
                        cfg.name(),
                        r.render()
                    );
                }
                Err(MilpError::Infeasible) => {
                    assert!(
                        !verifier_feasible,
                        "{}: MILP infeasible at {deadline} but the all-fast \
                         schedule verifies in {} µs",
                        cfg.name(),
                        report.modeled_time_us
                    );
                }
                Err(e) => panic!("{}: solver error {e}", cfg.name()),
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 21);
}

/// Every error-severity code the verifier can emit carries a stable
/// `Vnnn` identifier — the CI contract for `--deny` greps.
#[test]
fn diagnostic_codes_are_stable() {
    assert_eq!(DiagCode::ModeConflict.code(), "V001");
    assert_eq!(DiagCode::FlowViolation.code(), "V005");
    assert_eq!(DiagCode::DeadlineModeled.code(), "V008");
    assert_eq!(format!("{}", Severity::Error), "error");
}
